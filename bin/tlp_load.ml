(* tlp_load: deterministic load generator for the tlp.rpc/v1 service.

   Builds a Workload.plan (pure function of the flags — the printed
   digest is the replay check), drives it through N concurrent client
   workers, prints a human summary, and optionally writes the
   tlp.load/v1 report (BENCH_load.json; schema in EXPERIMENTS.md). *)

open Cmdliner
module Workload = Tlp_load.Workload
module Runner = Tlp_load.Runner
module Report = Tlp_load.Report
module Ring = Tlp_route.Ring

(* --cluster HOST:PORT,HOST:PORT,... — members named shard0..N-1 in
   list order, matching the names a tlp_route front tier gives
   unnamed --shard flags, so both compute the same placement. *)
let parse_cluster ~vnodes ~ring_seed text =
  let parse_member index spec =
    match String.rindex_opt spec ':' with
    | None -> Error (Printf.sprintf "cluster member %S: expected HOST:PORT" spec)
    | Some i -> (
        let host = String.sub spec 0 i in
        let port_s = String.sub spec (i + 1) (String.length spec - i - 1) in
        match int_of_string_opt port_s with
        | Some port when port > 0 && port < 65536 && host <> "" ->
            Ok { Ring.name = Printf.sprintf "shard%d" index; host; port }
        | _ -> Error (Printf.sprintf "cluster member %S: bad HOST:PORT" spec))
  in
  let rec go index acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | spec :: rest -> (
        match parse_member index (String.trim spec) with
        | Ok s -> go (index + 1) (s :: acc) rest
        | Error _ as e -> e)
  in
  match go 0 [] (String.split_on_char ',' text) with
  | Ok shards -> (
      match Ring.create ~vnodes ~seed:ring_seed shards with
      | ring -> Ok ring
      | exception Invalid_argument msg -> Error msg)
  | Error _ as e -> e

let parse_mix text =
  match String.split_on_char ':' text with
  | [ p; s; v ] -> (
      match
        ( int_of_string_opt (String.trim p),
          int_of_string_opt (String.trim s),
          int_of_string_opt (String.trim v) )
      with
      | Some partition, Some sweep, Some verify ->
          Some { Workload.partition; sweep; verify }
      | _ -> None)
  | _ -> None

let run host port cluster vnodes ring_seed seed workers requests rate poisson
    mix corpus chain_n max_weight timeout_ms deadline_ms trace_every
    batch_every proto drift out expect_clean plan_only =
  let arrival =
    match rate with
    | None -> Workload.Closed
    | Some r when poisson -> Workload.Poisson r
    | Some r -> Workload.Fixed_rate r
  in
  let mix =
    match parse_mix mix with
    | Some m -> m
    | None ->
        Printf.eprintf
          "error: --mix must be three integers P:S:V, got %S\n" mix;
        exit 1
  in
  let config =
    {
      Workload.seed;
      workers;
      requests;
      arrival;
      mix;
      corpus;
      chain_n;
      max_weight;
      timeout_ms = (if timeout_ms <= 0 then None else Some timeout_ms);
      trace_every;
      batch_every;
      proto;
      drift;
    }
  in
  let plan =
    match Workload.plan config with
    | p -> p
    | exception Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
  in
  if plan_only then begin
    Printf.printf "digest      %s\n" (Workload.sequence_digest plan);
    List.iter
      (fun (m, c) -> Printf.printf "%-11s %d\n" m c)
      (Workload.method_counts plan);
    List.iter
      (fun (p, c) -> Printf.printf "%-11s %d\n" p c)
      (Workload.class_counts plan)
  end
  else begin
    let result =
      match (cluster, port) with
      | Some text, _ -> (
          match parse_cluster ~vnodes ~ring_seed text with
          | Ok ring -> Runner.run_cluster ~deadline_ms ~ring plan
          | Error msg ->
              Printf.eprintf "error: %s\n" msg;
              exit 1)
      | None, Some port -> Runner.run ~host ~deadline_ms ~port plan
      | None, None ->
          prerr_endline "error: one of --port or --cluster is required";
          exit 1
    in
    print_string (Report.summary result);
    List.iter
      (fun (seq, msg) -> Printf.eprintf "failure: request %d: %s\n" seq msg)
      result.Runner.failures;
    (match out with
    | Some path ->
        Report.write ~path result;
        Printf.printf "wrote       %s\n" path
    | None -> ());
    if
      expect_clean
      && result.Runner.counts.Runner.ok <> Runner.total result.Runner.counts
    then begin
      Printf.eprintf "error: --expect-clean: %d of %d requests failed\n"
        (Runner.total result.Runner.counts - result.Runner.counts.Runner.ok)
        (Runner.total result.Runner.counts);
      exit 1
    end
  end

let cmd =
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "port"; "p" ] ~docv:"PORT"
          ~doc:"Server TCP port (single-target mode; exclusive with \
                $(b,--cluster)).")
  in
  let cluster =
    Arg.(
      value
      & opt (some string) None
      & info [ "cluster" ] ~docv:"HOST:PORT,..."
          ~doc:"Comma-separated shard addresses.  Workers route each \
                request by its instance digest on a consistent-hash \
                ring over these members (named shard0..N-1 in order), \
                the same placement a tlp_route front tier computes — \
                but with no proxy in the path, so this measures raw \
                aggregate shard capacity (PROTOCOL.md §8).")
  in
  let vnodes =
    Arg.(
      value & opt int 64
      & info [ "vnodes" ] ~docv:"N"
          ~doc:"Ring points per shard for $(b,--cluster).")
  in
  let ring_seed =
    Arg.(
      value & opt int 42
      & info [ "ring-seed" ] ~docv:"SEED"
          ~doc:"Ring placement seed for $(b,--cluster); match the \
                router's value to reproduce its placement.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Workload seed.  The whole request sequence is a pure \
                function of the flags; rerunning with the same flags \
                replays identical bytes (compare the printed digest).")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Concurrent client workers.")
  in
  let requests =
    Arg.(
      value & opt int 100
      & info [ "requests"; "n" ] ~docv:"N"
          ~doc:"Total requests across all workers.")
  in
  let rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"RPS"
          ~doc:"Open-loop arrival rate in requests/second (global).  \
                Without it the run is closed-loop: each worker fires as \
                soon as its previous response lands.")
  in
  let poisson =
    Arg.(
      value & flag
      & info [ "poisson" ]
          ~doc:"With $(b,--rate), draw Poisson (exponential interarrival) \
                times instead of an evenly spaced schedule.")
  in
  let mix =
    Arg.(
      value & opt string "6:3:1"
      & info [ "mix" ] ~docv:"P:S:V"
          ~doc:"Relative method weights partition:sweep:verify.")
  in
  let corpus =
    Arg.(
      value & opt int 8
      & info [ "corpus" ] ~docv:"N"
          ~doc:"Distinct generated chain instances to draw requests from.")
  in
  let chain_n =
    Arg.(
      value & opt int 64
      & info [ "chain-n" ] ~docv:"N" ~doc:"Vertices per corpus chain.")
  in
  let max_weight =
    Arg.(
      value & opt int 20
      & info [ "max-weight" ] ~docv:"W"
          ~doc:"Weight bound of corpus chains.")
  in
  let timeout_ms =
    Arg.(
      value & opt int 0
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Server-side per-request deadline stamped into each frame \
                (0 = none).")
  in
  let deadline_ms =
    Arg.(
      value & opt int 30_000
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Client-side end-to-end bound per request, covering \
                retries.")
  in
  let trace_every =
    Arg.(
      value & opt int 0
      & info [ "trace-every" ] ~docv:"N"
          ~doc:"Request server-side tracing on every Nth request \
                (0 = never).")
  in
  let batch_every =
    Arg.(
      value & opt int 0
      & info [ "batch-every" ] ~docv:"N"
          ~doc:"Send every Nth request with priority \"batch\" (the EDF \
                admission queue's deferrable class); 0 sends everything \
                interactive.")
  in
  let proto =
    Arg.(
      value
      & opt (enum [ ("v1", Tlp_client.Client.V1); ("v2", Tlp_client.Client.V2) ])
          Tlp_client.Client.V1
      & info [ "proto" ] ~docv:"v1|v2"
          ~doc:"Wire protocol: newline-delimited JSON (v1, default) or                 length-prefixed binary frames (v2).  The plan digest is                 protocol-independent, so v1 and v2 runs of the same flags                 are directly comparable.")
  in
  let drift =
    Arg.(
      value & opt int 0
      & info [ "drift" ] ~docv:"ROUNDS"
          ~doc:"Streaming-session mode: each worker opens one session \
                over a generated chain, then sends ROUNDS update/resolve \
                pairs driving a seed-deterministic weight random walk \
                (PROTOCOL.md section 9).  Overrides $(b,--requests) and \
                $(b,--mix); closed-loop only.  The printed digest \
                replays like any other plan.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the tlp.load/v1 JSON report here (e.g. \
                BENCH_load.json).")
  in
  let expect_clean =
    Arg.(
      value & flag
      & info [ "expect-clean" ]
          ~doc:"Exit nonzero unless every request succeeded (no \
                transport, timeout, or protocol failures).")
  in
  let plan_only =
    Arg.(
      value & flag
      & info [ "plan-only" ]
          ~doc:"Build and fingerprint the workload without contacting \
                any server: print the digest and method counts, then \
                exit.")
  in
  Cmd.v
    (Cmd.info "tlp_load" ~version:"1.0.0"
       ~doc:"Deterministic open/closed-loop load generator for the \
             tlp.rpc/v1 partition service")
    Term.(
      const run $ host $ port $ cluster $ vnodes $ ring_seed $ seed $ workers
      $ requests $ rate $ poisson $ mix $ corpus $ chain_n $ max_weight
      $ timeout_ms $ deadline_ms $ trace_every $ batch_every $ proto $ drift
      $ out $ expect_clean $ plan_only)

let () = exit (Cmd.eval cmd)
