(* tlp-lint: the project's own static analyzer.  See lib/lint for the
   rules; this is argument parsing, report emission, and the exit code
   CI keys off. *)

module Json_out = Tlp_util.Json_out
module Allowlist = Tlp_lint.Allowlist
module Driver = Tlp_lint.Driver

let usage =
  "tlp_lint [options] [root ...]\n\
   Static analysis over the project's OCaml sources (default roots: lib \
   bin bench test examples).\n\
   Per-file rules R1-R4 plus interprocedural rules R5-R8 driven by the\n\
   whole-program call graph and effect summaries.\n\
   Exit codes: 0 clean; 1 findings or stale allowlist entries; 2 the \
   tool\n\
   itself failed (unreadable root, unparseable source, bad allowlist).\n"

let () =
  let format = ref "text" in
  let out = ref "" in
  let allowlist_path = ref ".tlp-lint" in
  let roots = ref [] in
  let spec =
    [
      ( "--format",
        Arg.Symbol ([ "text"; "json"; "json-v2" ], fun s -> format := s),
        " report format (default text; json-v2 adds call-path evidence)" );
      ( "--allowlist",
        Arg.Set_string allowlist_path,
        "FILE allowlist path (default .tlp-lint; a missing file is an \
         empty allowlist)" );
      ("-o", Arg.Set_string out, "FILE write the report to FILE, not stdout");
    ]
  in
  Arg.parse spec (fun r -> roots := r :: !roots) usage;
  let roots =
    match List.rev !roots with
    | [] -> [ "lib"; "bin"; "bench"; "test"; "examples" ]
    | rs -> rs
  in
  match Allowlist.load !allowlist_path with
  | Error msgs ->
      List.iter prerr_endline msgs;
      (* A malformed allowlist is a tool-input failure, not a verdict. *)
      exit 2
  | Ok allowlist ->
      let report = Driver.scan ~allowlist ~roots in
      let rendered =
        match !format with
        | "json" | "json-v2" -> (
            let doc =
              if !format = "json" then Driver.to_json report
              else Driver.to_json_v2 report
            in
            let s = Json_out.to_string doc in
            (* The report must satisfy our own validator before anything
               downstream (CI) is asked to trust it. *)
            match Json_out.validate s with
            | Ok () -> s ^ "\n"
            | Error msg ->
                prerr_endline ("tlp_lint: emitted invalid JSON: " ^ msg);
                exit 2)
        | _ -> Driver.render_text report
      in
      if !out = "" then print_string rendered
      else
        Out_channel.with_open_bin !out (fun oc -> output_string oc rendered);
      exit (Driver.exit_code report)
