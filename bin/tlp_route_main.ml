(* tlp_route: consistent-hash front tier over tlp_serve shards
   (PROTOCOL.md §8, DESIGN.md §9).

   Speaks both tlp.rpc framings, routes each request to the shard
   owning its instance digest, hedges slow primaries against the next
   replica on the ring, and answers stats/health/cluster itself.
   SIGTERM/SIGINT drain gracefully, like tlp_serve. *)

open Cmdliner
module Router = Tlp_route.Router
module Ring = Tlp_route.Ring

(* "name=host:port" or "host:port" (name defaults to shardN by
   position).  Names anchor ring placement, so explicit names let an
   operator replace a shard's address without reshuffling keys. *)
let parse_shard ~index spec =
  let name, addr =
    match String.index_opt spec '=' with
    | Some i ->
        ( String.sub spec 0 i,
          String.sub spec (i + 1) (String.length spec - i - 1) )
    | None -> (Printf.sprintf "shard%d" index, spec)
  in
  match String.rindex_opt addr ':' with
  | None -> Error (Printf.sprintf "shard %S: expected HOST:PORT" spec)
  | Some i -> (
      let host = String.sub addr 0 i in
      let port_s = String.sub addr (i + 1) (String.length addr - i - 1) in
      match int_of_string_opt port_s with
      | Some port when port > 0 && port < 65536 && host <> "" ->
          Ok { Ring.name; host; port }
      | _ -> Error (Printf.sprintf "shard %S: bad HOST:PORT" spec))

let parse_shards specs =
  let rec go index acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | spec :: rest -> (
        match parse_shard ~index spec with
        | Ok s -> go (index + 1) (s :: acc) rest
        | Error _ as e -> e)
  in
  go 0 [] specs

let route host port shards vnodes ring_seed ring_epoch hedge_ms
    shard_deadline_ms pool_capacity =
  match parse_shards shards with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | Ok [||] ->
      prerr_endline "error: at least one --shard is required";
      exit 1
  | Ok shards -> (
      let config =
        {
          Router.default_config with
          Router.host;
          port;
          vnodes;
          ring_seed;
          ring_epoch;
          hedge_ms;
          shard_deadline_ms;
          pool_capacity;
        }
      in
      match Router.run config shards with
      | t ->
          (* Same startup contract as tlp_serve: scripts parse this
             line for the (possibly ephemeral) port. *)
          Printf.printf "%s router listening on %s:%d (%d shards)\n%!"
            Tlp_server.Protocol.schema host (Router.port t)
            (Array.length shards);
          Router.wait t;
          prerr_endline "tlp_route: drained, exiting"
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "error: cannot listen on %s:%d: %s\n" host port
            (Unix.error_message e);
          exit 1
      | exception Invalid_argument msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1)

let main () =
  let host =
    Arg.(
      value
      & opt string Router.default_config.Router.host
      & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port =
    Arg.(
      value
      & opt int Router.default_config.Router.port
      & info [ "port"; "p" ] ~docv:"PORT"
          ~doc:"TCP port; 0 picks an ephemeral port and prints it on \
                the listening line.")
  in
  let shards =
    Arg.(
      value & opt_all string []
      & info [ "shard" ] ~docv:"[NAME=]HOST:PORT"
          ~doc:"A backend tlp_serve shard; repeatable, order defines \
                default names shard0, shard1, ...  Names anchor ring \
                placement (PROTOCOL.md §8).")
  in
  let vnodes =
    Arg.(
      value
      & opt int Router.default_config.Router.vnodes
      & info [ "vnodes" ] ~docv:"N"
          ~doc:"Virtual ring points per shard.")
  in
  let ring_seed =
    Arg.(
      value
      & opt int Router.default_config.Router.ring_seed
      & info [ "ring-seed" ] ~docv:"SEED"
          ~doc:"Ring placement seed; every router for a cluster must \
                use the same value.")
  in
  let ring_epoch =
    Arg.(
      value
      & opt int Router.default_config.Router.ring_epoch
      & info [ "ring-epoch" ] ~docv:"N"
          ~doc:"Membership generation advertised by the $(b,cluster) \
                method.")
  in
  let hedge_ms =
    Arg.(
      value
      & opt int Router.default_config.Router.hedge_ms
      & info [ "hedge-ms" ] ~docv:"MS"
          ~doc:"Hedge delay before the replica shard is tried; capped \
                per request at half its timeout_ms.")
  in
  let shard_deadline =
    Arg.(
      value
      & opt int Router.default_config.Router.shard_deadline_ms
      & info [ "shard-deadline-ms" ] ~docv:"MS"
          ~doc:"Per-shard-call deadline for requests without their own \
                timeout_ms.")
  in
  let pool =
    Arg.(
      value
      & opt int Router.default_config.Router.pool_capacity
      & info [ "pool-capacity" ] ~docv:"N"
          ~doc:"Idle pooled connections kept per shard and framing.")
  in
  let info =
    Cmd.info "tlp_route" ~version:"%%VERSION%%"
      ~doc:"Consistent-hash routing tier for tlp_serve shards"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const route $ host $ port $ shards $ vnodes $ ring_seed
            $ ring_epoch $ hedge_ms $ shard_deadline $ pool)))

let () = main ()
