(* tlp: command-line interface to the partitioning library.

   Subcommands:
     generate   make a random chain/tree instance file
     partition  run a partitioning algorithm on an instance
     stats      prime-subpath statistics across a K sweep
     sweep      solve one chain at many K values with shared scratch
     simulate   execute a partitioned chain on a machine model *)

open Cmdliner
module Chain = Tlp_graph.Chain
module Tree = Tlp_graph.Tree
module Weights = Tlp_graph.Weights
module Io = Tlp_graph.Instance_io
module Rng = Tlp_util.Rng
module Texttab = Tlp_util.Texttab
module Metrics = Tlp_util.Metrics
module Json = Tlp_util.Json_out

(* ---------- shared arguments ---------- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let k_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "k"; "bound" ] ~docv:"K" ~doc:"Execution-time bound (component capacity).")

let instance_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "instance"; "i" ] ~docv:"FILE" ~doc:"Instance file (see docs).")

let dist_conv =
  let parse s =
    match Weights.of_string s with
    | d -> Ok d
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf d -> Format.pp_print_string ppf (Weights.to_string d))

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains.  With N > 1 the work is spread over a \
              fixed pool of N domains; results are identical to N = 1.")

let metrics_arg =
  Arg.(
    value
    & opt (some (enum [ ("json", `Json); ("text", `Text) ])) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Report solver instrumentation (op counts, wall time, \
           allocations).  With $(b,json) the entire output is a single \
           JSON document; with $(b,text) a metrics table follows the \
           normal output.")

(* Every instrumented subcommand funnels its result through [emit]: the
   solution as JSON fields plus a thunk printing the classic text form.
   JSON mode prints exactly one JSON document on stdout. *)
let emit mode metrics ~json_fields ~text =
  match mode with
  | Some `Json ->
      print_endline
        (Json.to_string
           (Json.Obj (json_fields @ [ ("metrics", Metrics.to_json metrics) ])))
  | Some `Text ->
      text ();
      print_string (Metrics.render_text metrics)
  | None -> text ()

let json_cut cut = Json.List (List.map (fun e -> Json.Int e) cut)

let json_ints xs = Json.List (List.map (fun x -> Json.Int x) xs)

let fail msg =
  prerr_endline ("error: " ^ msg);
  exit 1

let load_instance path =
  match Io.load path with Ok i -> i | Error msg -> fail msg

let load_chain path =
  match load_instance path with
  | Io.Chain_instance c -> c
  | Io.Tree_instance _ -> fail "expected a chain instance"

(* ---------- generate ---------- *)

let generate kind n alpha_dist beta_dist seed output =
  let rng = Rng.create seed in
  let instance =
    match kind with
    | `Chain ->
        Io.Chain_instance
          (Tlp_graph.Chain_gen.random rng ~n ~alpha_dist ~beta_dist)
    | `Tree ->
        Io.Tree_instance
          (Tlp_graph.Tree_gen.random_attachment rng ~n ~weight_dist:alpha_dist
             ~delta_dist:beta_dist)
  in
  match output with
  | Some path ->
      Io.save path instance;
      Printf.printf "wrote %s\n" path
  | None -> print_string (Io.to_string instance)

let generate_cmd =
  let kind =
    Arg.(
      value
      & opt (enum [ ("chain", `Chain); ("tree", `Tree) ]) `Chain
      & info [ "kind" ] ~docv:"KIND" ~doc:"Instance kind: chain or tree.")
  in
  let n =
    Arg.(value & opt int 100 & info [ "n"; "size" ] ~docv:"N" ~doc:"Number of tasks.")
  in
  let alpha =
    Arg.(
      value
      & opt dist_conv (Weights.Uniform (1, 100))
      & info [ "alpha" ] ~docv:"DIST"
          ~doc:"Vertex weight distribution (const:C, uniform:LO:HI, exp:M, \
                bimodal:S:L:P).")
  in
  let beta =
    Arg.(
      value
      & opt dist_conv (Weights.Uniform (1, 100))
      & info [ "beta" ] ~docv:"DIST" ~doc:"Edge weight distribution.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a random task-graph instance")
    Term.(const generate $ kind $ n $ alpha $ beta $ seed_arg $ output)

(* ---------- partition ---------- *)

let assignment_of_chain_cut chain cut =
  let n = Chain.n chain in
  let a = Array.make n 0 in
  List.iteri
    (fun bi (i, j) ->
      for v = i to j do
        a.(v) <- bi
      done)
    (Chain.components chain cut);
  a

let write_dot dot contents =
  match dot with
  | None -> ()
  | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc contents);
      (* stderr so that [--metrics json] output stays a single document *)
      Printf.eprintf "dot written to %s\n" path

let print_chain_solution name cut weight chain k =
  Printf.printf "algorithm: %s\n" name;
  Printf.printf "cut edges: [%s]\n"
    (String.concat "; " (List.map string_of_int cut));
  Printf.printf "cut weight: %d\n" weight;
  Printf.printf "components: %d\n" (List.length cut + 1);
  Printf.printf "component weights: [%s]\n"
    (String.concat "; "
       (List.map string_of_int (Chain.component_weights chain cut)));
  Printf.printf "feasible: %b\n" (Chain.is_feasible chain ~k cut)

let partition algorithm path k dot metrics_mode =
  let metrics =
    match metrics_mode with Some _ -> Metrics.create () | None -> Metrics.null
  in
  let emit = emit metrics_mode metrics in
  match (load_instance path, algorithm) with
  | Io.Chain_instance chain, `Bandwidth -> (
      match Tlp_core.Bandwidth_hitting.solve ~metrics chain ~k with
      | Ok { Tlp_core.Bandwidth_hitting.cut; weight; stats } ->
          write_dot dot
            (Tlp_graph.Dot.of_chain
               ~assignment:(assignment_of_chain_cut chain cut) chain);
          emit
            ~json_fields:
              [
                ("algorithm", Json.String "bandwidth (TEMP_S)");
                ("cut", json_cut cut);
                ("weight", Json.Int weight);
                ("components", Json.Int (List.length cut + 1));
                ( "component_weights",
                  json_ints (Chain.component_weights chain cut) );
                ("primes", Json.Int stats.Tlp_core.Bandwidth_hitting.p);
                ("groups", Json.Int stats.Tlp_core.Bandwidth_hitting.r);
                ("q_mean", Json.Float stats.Tlp_core.Bandwidth_hitting.q_mean);
              ]
            ~text:(fun () ->
              print_chain_solution "bandwidth (TEMP_S)" cut weight chain k;
              Printf.printf "primes: %d, groups: %d, q: %.2f\n"
                stats.Tlp_core.Bandwidth_hitting.p
                stats.Tlp_core.Bandwidth_hitting.r
                stats.Tlp_core.Bandwidth_hitting.q_mean)
      | Error e -> fail (Tlp_core.Infeasible.to_string e))
  | Io.Chain_instance chain, `Bottleneck -> (
      match Tlp_core.Chain_bottleneck.solve ~metrics chain ~k with
      | Ok { Tlp_core.Chain_bottleneck.cut; bottleneck } ->
          write_dot dot
            (Tlp_graph.Dot.of_chain
               ~assignment:(assignment_of_chain_cut chain cut) chain);
          emit
            ~json_fields:
              [
                ("algorithm", Json.String "chain bottleneck");
                ("cut", json_cut cut);
                ("weight", Json.Int (Chain.cut_weight chain cut));
                ("bottleneck", Json.Int bottleneck);
                ("components", Json.Int (List.length cut + 1));
              ]
            ~text:(fun () ->
              print_chain_solution "chain bottleneck" cut
                (Chain.cut_weight chain cut) chain k;
              Printf.printf "bottleneck: %d\n" bottleneck)
      | Error e -> fail (Tlp_core.Infeasible.to_string e))
  | Io.Chain_instance chain, (`Procmin | `Pipeline) -> (
      (* A chain is a tree; run the tree pipeline on it. *)
      let t = Tree.of_chain chain in
      match Tlp_core.Tree_pipeline.partition ~metrics t ~k with
      | Ok r ->
          emit
            ~json_fields:
              [
                ("algorithm", Json.String "tree pipeline on chain");
                ("cut", json_cut r.Tlp_core.Tree_pipeline.cut);
                ( "components",
                  Json.Int r.Tlp_core.Tree_pipeline.n_components );
                ("bottleneck", Json.Int r.Tlp_core.Tree_pipeline.bottleneck);
                ("bandwidth", Json.Int r.Tlp_core.Tree_pipeline.bandwidth);
              ]
            ~text:(fun () ->
              Printf.printf "algorithm: tree pipeline on chain\n";
              Printf.printf "components: %d (bottleneck %d, bandwidth %d)\n"
                r.Tlp_core.Tree_pipeline.n_components
                r.Tlp_core.Tree_pipeline.bottleneck
                r.Tlp_core.Tree_pipeline.bandwidth)
      | Error e -> fail (Tlp_core.Infeasible.to_string e))
  | Io.Tree_instance t, `Bottleneck -> (
      match Tlp_core.Bottleneck.fast ~metrics t ~k with
      | Ok { Tlp_core.Bottleneck.cut; bottleneck } ->
          emit
            ~json_fields:
              [
                ("algorithm", Json.String "tree bottleneck (Alg 2.1)");
                ("cut", json_cut cut);
                ("bottleneck", Json.Int bottleneck);
                ("components", Json.Int (List.length cut + 1));
              ]
            ~text:(fun () ->
              Printf.printf "algorithm: tree bottleneck (Alg 2.1)\n";
              Printf.printf "cut edges: [%s]\n"
                (String.concat "; " (List.map string_of_int cut));
              Printf.printf "bottleneck: %d\ncomponents: %d\n" bottleneck
                (List.length cut + 1))
      | Error e -> fail (Tlp_core.Infeasible.to_string e))
  | Io.Tree_instance t, `Procmin -> (
      match Tlp_core.Proc_min.solve ~metrics t ~k with
      | Ok { Tlp_core.Proc_min.cut; n_components } ->
          emit
            ~json_fields:
              [
                ( "algorithm",
                  Json.String "processor minimization (Alg 2.2)" );
                ("cut", json_cut cut);
                ("components", Json.Int n_components);
                ( "component_weights",
                  json_ints (Tree.component_weights t cut) );
              ]
            ~text:(fun () ->
              Printf.printf "algorithm: processor minimization (Alg 2.2)\n";
              Printf.printf "cut edges: [%s]\n"
                (String.concat "; " (List.map string_of_int cut));
              Printf.printf "components: %d\n" n_components;
              Printf.printf "component weights: [%s]\n"
                (String.concat "; "
                   (List.map string_of_int (Tree.component_weights t cut))))
      | Error e -> fail (Tlp_core.Infeasible.to_string e))
  | Io.Tree_instance t, `Pipeline -> (
      match Tlp_core.Tree_pipeline.partition ~metrics t ~k with
      | Ok r ->
          write_dot dot
            (Tlp_graph.Dot.of_tree
               ~assignment:
                 (Tlp_core.Tree_pipeline.assignment t
                    r.Tlp_core.Tree_pipeline.cut)
               t);
          emit
            ~json_fields:
              [
                ( "algorithm",
                  Json.String "full pipeline (bottleneck + proc-min)" );
                ("cut", json_cut r.Tlp_core.Tree_pipeline.cut);
                ("bottleneck", Json.Int r.Tlp_core.Tree_pipeline.bottleneck);
                ("bandwidth", Json.Int r.Tlp_core.Tree_pipeline.bandwidth);
                ( "components",
                  Json.Int r.Tlp_core.Tree_pipeline.n_components );
                ( "raw_components",
                  Json.Int r.Tlp_core.Tree_pipeline.raw_components );
              ]
            ~text:(fun () ->
              Printf.printf
                "algorithm: full pipeline (bottleneck + proc-min)\n";
              Printf.printf "cut edges: [%s]\n"
                (String.concat "; "
                   (List.map string_of_int r.Tlp_core.Tree_pipeline.cut));
              Printf.printf
                "bottleneck: %d\nbandwidth: %d\ncomponents: %d (raw %d)\n"
                r.Tlp_core.Tree_pipeline.bottleneck
                r.Tlp_core.Tree_pipeline.bandwidth
                r.Tlp_core.Tree_pipeline.n_components
                r.Tlp_core.Tree_pipeline.raw_components)
      | Error e -> fail (Tlp_core.Infeasible.to_string e))
  | Io.Tree_instance t, `Bandwidth -> (
      (* NP-complete in general (Theorem 1); exact for stars. *)
      match Tlp_core.Star_bandwidth.center t with
      | Some _ -> (
          match Tlp_core.Star_bandwidth.solve t ~k with
          | Ok { Tlp_core.Star_bandwidth.cut; weight; _ } ->
              emit
                ~json_fields:
                  [
                    ( "algorithm",
                      Json.String "star bandwidth (knapsack reduction)" );
                    ("cut", json_cut cut);
                    ("weight", Json.Int weight);
                  ]
                ~text:(fun () ->
                  Printf.printf
                    "algorithm: star bandwidth (knapsack reduction)\n";
                  Printf.printf "cut edges: [%s]\ncut weight: %d\n"
                    (String.concat "; " (List.map string_of_int cut))
                    weight)
          | Error e -> fail (Tlp_core.Infeasible.to_string e))
      | None ->
          fail
            "bandwidth minimization on general trees is NP-complete \
             (Theorem 1); only stars are solved exactly — use 'pipeline' \
             for the bottleneck+proc-min composition")

let partition_cmd =
  let algorithm =
    Arg.(
      value
      & opt
          (enum
             [
               ("bandwidth", `Bandwidth);
               ("bottleneck", `Bottleneck);
               ("procmin", `Procmin);
               ("pipeline", `Pipeline);
             ])
          `Bandwidth
      & info [ "algorithm"; "a" ] ~docv:"ALGO"
          ~doc:"bandwidth | bottleneck | procmin | pipeline.")
  in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:"Also write a Graphviz rendering colored by component.")
  in
  Cmd.v
    (Cmd.info "partition" ~doc:"Partition an instance under bound K")
    Term.(
      const partition $ algorithm $ instance_arg $ k_arg $ dot $ metrics_arg)

(* ---------- stats ---------- *)

let stats path ks =
  let chain = load_chain path in
  let tab =
    Texttab.create
      ~title:(Printf.sprintf "prime-subpath statistics, n = %d" (Chain.n chain))
      [ "K"; "p"; "r"; "q"; "plogq"; "nlogn"; "opt weight" ]
  in
  let nlogn =
    let n = float_of_int (Chain.n chain) in
    n *. (log n /. log 2.0)
  in
  List.iter
    (fun k ->
      match Tlp_core.Bandwidth_hitting.solve chain ~k with
      | Ok { Tlp_core.Bandwidth_hitting.weight; stats = s; _ } ->
          let plogq =
            float_of_int s.Tlp_core.Bandwidth_hitting.p
            *. (log (Stdlib.max 2.0 s.Tlp_core.Bandwidth_hitting.q_mean)
               /. log 2.0)
          in
          Texttab.add_row tab
            [
              string_of_int k;
              string_of_int s.Tlp_core.Bandwidth_hitting.p;
              string_of_int s.Tlp_core.Bandwidth_hitting.r;
              Printf.sprintf "%.2f" s.Tlp_core.Bandwidth_hitting.q_mean;
              Printf.sprintf "%.1f" plogq;
              Printf.sprintf "%.1f" nlogn;
              string_of_int weight;
            ]
      | Error e ->
          Texttab.add_row tab
            [ string_of_int k; "-"; "-"; "-"; "-"; "-";
              "infeasible: " ^ Tlp_core.Infeasible.to_string e ])
    ks;
  Texttab.print tab

let stats_cmd =
  let ks =
    Arg.(
      non_empty
      & opt (list int) []
      & info [ "k-values" ] ~docv:"K1,K2,..." ~doc:"Bounds to sweep.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Prime-subpath statistics across a K sweep")
    Term.(const stats $ instance_arg $ ks)

(* ---------- sweep ---------- *)

let sweep path ks algorithm jobs metrics_mode =
  let module Ksweep = Tlp_engine.Ksweep in
  let chain = load_chain path in
  let metrics =
    match metrics_mode with Some _ -> Metrics.create () | None -> Metrics.null
  in
  let results =
    Metrics.with_span metrics "sweep" (fun () ->
        if jobs <= 1 then
          Ksweep.sweep ~metrics (Ksweep.create chain) ~algorithm ks
        else Ksweep.sweep_parallel ~metrics ~jobs chain ~algorithm ks)
  in
  let algo_name =
    match algorithm with
    | Ksweep.Deque -> "deque"
    | Ksweep.Hitting -> "hitting"
  in
  emit metrics_mode metrics
    ~json_fields:
      [
        ("algorithm", Json.String algo_name);
        ("n", Json.Int (Chain.n chain));
        ("jobs", Json.Int jobs);
        ( "entries",
          Json.List
            (List.map
               (function
                 | Ok e ->
                     Json.Obj
                       ([
                          ("k", Json.Int e.Ksweep.k);
                          ("weight", Json.Int e.Ksweep.weight);
                          ("cut", json_cut e.Ksweep.cut);
                        ]
                       @
                       match e.Ksweep.stats with
                       | None -> []
                       | Some s ->
                           [
                             ("primes", Json.Int s.Tlp_core.Bandwidth_hitting.p);
                             ("groups", Json.Int s.Tlp_core.Bandwidth_hitting.r);
                             ( "q_mean",
                               Json.Float s.Tlp_core.Bandwidth_hitting.q_mean );
                           ])
                 | Error e ->
                     Json.Obj
                       [
                         ( "infeasible",
                           Json.String (Tlp_core.Infeasible.to_string e) );
                       ])
               results) );
      ]
    ~text:(fun () ->
      let tab =
        Texttab.create
          ~title:
            (Printf.sprintf "K sweep (%s), n = %d, jobs = %d" algo_name
               (Chain.n chain) jobs)
          [ "K"; "opt weight"; "cut size"; "p"; "r"; "q" ]
      in
      List.iter
        (function
          | Ok e ->
              let p, r, q =
                match e.Ksweep.stats with
                | Some s ->
                    ( string_of_int s.Tlp_core.Bandwidth_hitting.p,
                      string_of_int s.Tlp_core.Bandwidth_hitting.r,
                      Printf.sprintf "%.2f" s.Tlp_core.Bandwidth_hitting.q_mean
                    )
                | None -> ("-", "-", "-")
              in
              Texttab.add_row tab
                [
                  string_of_int e.Ksweep.k;
                  string_of_int e.Ksweep.weight;
                  string_of_int (List.length e.Ksweep.cut);
                  p; r; q;
                ]
          | Error err ->
              Texttab.add_row tab
                [ "-"; "-"; "-"; "-"; "-";
                  "infeasible: " ^ Tlp_core.Infeasible.to_string err ])
        results;
      Texttab.print tab)

let sweep_cmd =
  let ks =
    Arg.(
      non_empty
      & opt (list int) []
      & info [ "k-values" ] ~docv:"K1,K2,..."
          ~doc:"Bounds to sweep (deduplicated, solved in ascending order).")
  in
  let algorithm =
    Arg.(
      value
      & opt
          (enum
             [
               ("deque", Tlp_engine.Ksweep.Deque);
               ("hitting", Tlp_engine.Ksweep.Hitting);
             ])
          Tlp_engine.Ksweep.Hitting
      & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc:"deque | hitting.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Solve one chain at many K values, reusing solver scratch \
          across the sweep (optionally across worker domains)")
    Term.(
      const sweep $ instance_arg $ ks $ algorithm $ jobs_arg $ metrics_arg)

(* ---------- simulate ---------- *)

let simulate path k processors bandwidth jobs interconnect metrics_mode =
  let chain = load_chain path in
  let metrics =
    match metrics_mode with Some _ -> Metrics.create () | None -> Metrics.null
  in
  let cut =
    match Tlp_core.Bandwidth_hitting.solve ~metrics chain ~k with
    | Ok { Tlp_core.Bandwidth_hitting.cut; _ } -> cut
    | Error e -> fail (Tlp_core.Infeasible.to_string e)
  in
  let machine =
    Tlp_archsim.Machine.make ~interconnect ~bandwidth ~processors ()
  in
  let r =
    Metrics.with_span metrics "pipeline_sim" (fun () ->
        Tlp_archsim.Pipeline_sim.run ~machine ~chain ~cut ~jobs)
  in
  emit metrics_mode metrics
    ~json_fields:
      [
        ("algorithm", Json.String "pipeline simulation");
        ("cut", json_cut cut);
        ("stages", Json.Int r.Tlp_archsim.Pipeline_sim.n_stages);
        ("makespan", Json.Int r.Tlp_archsim.Pipeline_sim.makespan);
        ("throughput", Json.Float r.Tlp_archsim.Pipeline_sim.throughput);
        ("avg_latency", Json.Float r.Tlp_archsim.Pipeline_sim.avg_latency);
        ( "network_busy_time",
          Json.Int r.Tlp_archsim.Pipeline_sim.network_busy_time );
        ( "traffic_per_job",
          Json.Int r.Tlp_archsim.Pipeline_sim.traffic_per_job );
      ]
    ~text:(fun () ->
      Format.printf "%a@." Tlp_archsim.Pipeline_sim.pp_report r)

let simulate_cmd =
  let processors =
    Arg.(value & opt int 16 & info [ "processors"; "p" ] ~docv:"P" ~doc:"Processor count.")
  in
  let bandwidth =
    Arg.(value & opt int 1 & info [ "bandwidth" ] ~docv:"B" ~doc:"Network bandwidth.")
  in
  let jobs =
    Arg.(value & opt int 100 & info [ "jobs" ] ~docv:"J" ~doc:"Jobs to stream.")
  in
  let interconnect =
    Arg.(
      value
      & opt
          (enum
             [
               ("bus", Tlp_archsim.Machine.Bus);
               ("crossbar", Tlp_archsim.Machine.Crossbar);
               ("multistage", Tlp_archsim.Machine.Multistage 4);
             ])
          Tlp_archsim.Machine.Bus
      & info [ "interconnect" ] ~docv:"IC" ~doc:"bus | crossbar | multistage.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Partition a chain and execute it on a machine model")
    Term.(
      const simulate $ instance_arg $ k_arg $ processors $ bandwidth $ jobs
      $ interconnect $ metrics_arg)

(* ---------- dual ---------- *)

let dual path budget processors =
  let chain = load_chain path in
  (match budget with
  | Some b ->
      let { Tlp_core.Chain_dual.k; cut; cut_weight } =
        Tlp_core.Chain_dual.min_bound_for_budget chain ~budget:b
      in
      Printf.printf "budget %d: minimal K = %d (cut [%s], weight %d)\n" b k
        (String.concat "; " (List.map string_of_int cut))
        cut_weight
  | None -> ());
  match processors with
  | Some m ->
      let { Tlp_core.Chain_dual.k; cut; cut_weight } =
        Tlp_core.Chain_dual.min_bound_for_processors chain ~m
      in
      Printf.printf
        "processors %d: minimal K = %d (cheapest cut [%s], weight %d)\n" m k
        (String.concat "; " (List.map string_of_int cut))
        cut_weight
  | None -> ()

let dual_cmd =
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"B" ~doc:"Fix the communication budget.")
  in
  let processors =
    Arg.(
      value
      & opt (some int) None
      & info [ "processors"; "m" ] ~docv:"M" ~doc:"Fix the processor count.")
  in
  Cmd.v
    (Cmd.info "dual"
       ~doc:"Minimize the execution bound K under a fixed budget or \
             processor count")
    Term.(const dual $ instance_arg $ budget $ processors)

(* ---------- tree-simulate ---------- *)

let tree_simulate path k processors =
  match load_instance path with
  | Io.Chain_instance _ -> fail "expected a tree instance"
  | Io.Tree_instance t -> (
      match Tlp_core.Tree_pipeline.partition t ~k with
      | Error e -> fail (Tlp_core.Infeasible.to_string e)
      | Ok r ->
          let machine = Tlp_archsim.Machine.make ~processors () in
          let report =
            Tlp_archsim.Tree_sim.run ~machine ~tree:t
              ~cut:r.Tlp_core.Tree_pipeline.cut ()
          in
          Printf.printf "components: %d (bottleneck %d, bandwidth %d)\n"
            r.Tlp_core.Tree_pipeline.n_components
            r.Tlp_core.Tree_pipeline.bottleneck
            r.Tlp_core.Tree_pipeline.bandwidth;
          Format.printf "%a@." Tlp_archsim.Tree_sim.pp_report report)

let tree_simulate_cmd =
  let processors =
    Arg.(
      value & opt int 64
      & info [ "processors"; "p" ] ~docv:"P" ~doc:"Processor count.")
  in
  Cmd.v
    (Cmd.info "tree-simulate"
       ~doc:"Partition a tree with the full pipeline and execute it on \
             the machine model")
    Term.(const tree_simulate $ instance_arg $ k_arg $ processors)

(* ---------- verify ---------- *)

(* One fuzzing chunk on a private RNG stream: random instances, every
   solver against its oracle.  Returns (instances checked, mismatch
   descriptions) so chunks can run on worker domains and report after
   the join. *)
let verify_chunk rng rounds =
  let mismatches = ref [] in
  let checked = ref 0 in
  for _ = 1 to rounds do
    let n = 1 + Rng.int rng 12 in
    let alpha = Array.init n (fun _ -> 1 + Rng.int rng 20) in
    let beta = Array.init (Stdlib.max 0 (n - 1)) (fun _ -> 1 + Rng.int rng 30) in
    let chain = Chain.make ~alpha ~beta in
    let total = Chain.total_weight chain in
    let k = Chain.max_alpha chain + Rng.int rng (Stdlib.max 1 total) in
    incr checked;
    let oracle =
      Option.map snd (Tlp_baselines.Exhaustive.chain_min_bandwidth chain ~k)
    in
    let weight_of = function
      | Ok { Tlp_core.Bandwidth.weight; _ } -> Some weight
      | Error _ -> None
    in
    let candidates =
      [
        weight_of (Tlp_core.Bandwidth.deque chain ~k);
        weight_of (Tlp_core.Bandwidth.heap chain ~k);
        (match Tlp_core.Bandwidth_hitting.solve chain ~k with
        | Ok { Tlp_core.Bandwidth_hitting.weight; _ } -> Some weight
        | Error _ -> None);
        (match Tlp_core.Bandwidth_primes_naive.solve chain ~k with
        | Ok { Tlp_core.Bandwidth_primes_naive.weight; _ } -> Some weight
        | Error _ -> None);
      ]
    in
    if not (List.for_all (( = ) oracle) candidates) then
      mismatches := Printf.sprintf "MISMATCH on chain n=%d k=%d" n k :: !mismatches;
    (* Tree side: bottleneck + proc-min vs exhaustive. *)
    let weights = Array.init n (fun _ -> 1 + Rng.int rng 20) in
    let parents =
      Array.init (n - 1) (fun i -> (Rng.int rng (i + 1), 1 + Rng.int rng 30))
    in
    let t = Tree.of_parents ~weights ~parents in
    let tk =
      Array.fold_left Stdlib.max 1 weights
      + Rng.int rng (Stdlib.max 1 (Tree.total_weight t))
    in
    (match
       ( Tlp_core.Bottleneck.fast t ~k:tk,
         Tlp_baselines.Exhaustive.tree_min_bottleneck t ~k:tk )
     with
    | Ok { Tlp_core.Bottleneck.bottleneck; _ }, Some (_, best)
      when bottleneck = best ->
        ()
    | _ ->
        mismatches :=
          Printf.sprintf "MISMATCH on tree bottleneck n=%d k=%d" n tk
          :: !mismatches);
    match
      ( Tlp_core.Proc_min.solve t ~k:tk,
        Tlp_baselines.Exhaustive.tree_min_cardinality t ~k:tk )
    with
    | Ok { Tlp_core.Proc_min.cut; _ }, Some (_, best)
      when List.length cut = best ->
        ()
    | _ ->
        mismatches :=
          Printf.sprintf "MISMATCH on proc-min n=%d k=%d" n tk :: !mismatches
  done;
  (!checked, List.rev !mismatches)

let verify rounds seed jobs =
  let chunks =
    (* Split the rounds into [jobs] near-equal chunks, each on its own
       RNG stream split from the seed, so the worker domains never touch
       a shared generator. *)
    let jobs = Stdlib.max 1 (Stdlib.min jobs rounds) in
    let rngs = Rng.split_n (Rng.create seed) jobs in
    let base = rounds / jobs and extra = rounds mod jobs in
    List.init jobs (fun i -> (rngs.(i), base + if i < extra then 1 else 0))
  in
  let results =
    match chunks with
    | [ (rng, r) ] -> [ verify_chunk rng r ]
    | _ ->
        Array.to_list
          (Tlp_engine.Pool.with_pool ~jobs:(List.length chunks) (fun pool ->
               Tlp_engine.Pool.parallel_map pool
                 (fun (rng, r) -> verify_chunk rng r)
                 (Array.of_list chunks)))
  in
  let checked = List.fold_left (fun acc (c, _) -> acc + c) 0 results in
  let mismatches = List.concat_map snd results in
  List.iter prerr_endline mismatches;
  Printf.printf "verified %d random instances: %d failures\n" checked
    (List.length mismatches);
  if mismatches <> [] then exit 1

let verify_cmd =
  let rounds =
    Arg.(
      value & opt int 500
      & info [ "rounds" ] ~docv:"N" ~doc:"Random instances to check.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Differential check of every solver against exhaustive oracles")
    Term.(const verify $ rounds $ seed_arg $ jobs_arg)

let () =
  let info =
    Cmd.info "tlp" ~version:"1.0.0"
      ~doc:"Partitioning tree and linear task graphs on shared memory \
            architecture (Ray & Jiang, ICDCS 1994)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; partition_cmd; stats_cmd; sweep_cmd; simulate_cmd;
            dual_cmd; tree_simulate_cmd; verify_cmd;
          ]))
