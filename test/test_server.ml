(* The partition service: LRU result cache, bounded admission queue,
   the tlp.rpc/v1 codec, and an end-to-end loopback exercise of the TCP
   daemon — concurrent requests, byte-identical responses against the
   direct library calls, cache hits, backpressure, deadlines, graceful
   shutdown. *)

open Helpers
module Json = Tlp_util.Json_out
module Chain = Tlp_graph.Chain
module Io = Tlp_graph.Instance_io
module Ksweep = Tlp_engine.Ksweep
module Cache = Tlp_server.Cache
module Admission = Tlp_server.Admission
module Protocol = Tlp_server.Protocol
module Handler = Tlp_server.Handler
module State = Tlp_server.State
module Server = Tlp_server.Server

let key ?(digest = "d0") ?(k = "8") ?(objective = "bandwidth")
    ?(algorithm = "hitting") () =
  { Cache.digest; k; objective; algorithm }

(* Cache entries carry both renderings; the unit tests only care about
   identity, so both sides hold the same marker. *)
let ent v = { Cache.v1 = v; v2 = v }

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || at (i + 1)
  in
  at 0

(* ---------- cache ---------- *)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 in
  Cache.add c (key ~digest:"a" ()) (ent "ra");
  Cache.add c (key ~digest:"b" ()) (ent "rb");
  (* Touch [a] so [b] becomes the eviction victim. *)
  check_bool "a hit" true (Cache.find c (key ~digest:"a" ()) = Some (ent "ra"));
  Cache.add c (key ~digest:"c" ()) (ent "rc");
  check_int "still 2 entries" 2 (Cache.length c);
  check_bool "b evicted" true (Cache.find c (key ~digest:"b" ()) = None);
  check_bool "a kept" true (Cache.find c (key ~digest:"a" ()) = Some (ent "ra"));
  check_bool "c kept" true (Cache.find c (key ~digest:"c" ()) = Some (ent "rc"));
  check_int "one eviction" 1 (Cache.evictions c)

let test_cache_mru_order () =
  let c = Cache.create ~capacity:3 in
  Cache.add c (key ~digest:"a" ()) (ent "ra");
  Cache.add c (key ~digest:"b" ()) (ent "rb");
  Cache.add c (key ~digest:"c" ()) (ent "rc");
  ignore (Cache.find c (key ~digest:"a" ()));
  let digests = List.map (fun k -> k.Cache.digest) (Cache.keys_mru c) in
  Alcotest.(check (list string)) "recency order" [ "a"; "c"; "b" ] digests

let test_cache_key_components () =
  (* Same digest, different k / objective / algorithm must be distinct
     entries: a digest collision across parameters may never replay the
     wrong result. *)
  let c = Cache.create ~capacity:8 in
  Cache.add c (key ~k:"8" ()) (ent "k8");
  Cache.add c (key ~k:"9" ()) (ent "k9");
  Cache.add c (key ~objective:"bottleneck" ()) (ent "obj");
  Cache.add c (key ~algorithm:"deque" ()) (ent "alg");
  check_int "four distinct entries" 4 (Cache.length c);
  check_bool "k=8" true (Cache.find c (key ~k:"8" ()) = Some (ent "k8"));
  check_bool "k=9" true (Cache.find c (key ~k:"9" ()) = Some (ent "k9"));
  check_bool "objective" true
    (Cache.find c (key ~objective:"bottleneck" ()) = Some (ent "obj"));
  check_bool "algorithm" true
    (Cache.find c (key ~algorithm:"deque" ()) = Some (ent "alg"))

let test_cache_counters_and_metrics () =
  let c = Cache.create ~capacity:2 in
  let m = Tlp_util.Metrics.create () in
  check_bool "miss" true (Cache.find ~metrics:m c (key ()) = None);
  Cache.add ~metrics:m c (key ()) (ent "r");
  check_bool "hit" true (Cache.find ~metrics:m c (key ()) = Some (ent "r"));
  Cache.add ~metrics:m c (key ~digest:"x" ()) (ent "rx");
  Cache.add ~metrics:m c (key ~digest:"y" ()) (ent "ry");
  check_int "hits" 1 (Cache.hits c);
  check_int "misses" 1 (Cache.misses c);
  check_int "evictions" 1 (Cache.evictions c);
  check_int "metrics hits" 1 (Tlp_util.Metrics.get m "server_cache_hits");
  check_int "metrics misses" 1 (Tlp_util.Metrics.get m "server_cache_misses");
  check_int "metrics evictions" 1
    (Tlp_util.Metrics.get m "server_cache_evictions")

let test_cache_refresh_same_key () =
  let c = Cache.create ~capacity:2 in
  Cache.add c (key ()) (ent "v1");
  Cache.add c (key ()) (ent "v2");
  check_int "refresh does not grow" 1 (Cache.length c);
  check_bool "latest value" true (Cache.find c (key ()) = Some (ent "v2"))

let test_cache_disabled () =
  let c = Cache.create ~capacity:0 in
  Cache.add c (key ()) (ent "r");
  check_int "nothing stored" 0 (Cache.length c);
  check_bool "always misses" true (Cache.find c (key ()) = None)

(* Steady-state allocation budget of a cache hit, enforced by
   measurement: with the sentinel-ring LRU a hit is a hashtable probe
   plus pointer relinks, so the only allocation is the [Some entry]
   result box.  The 8-words/hit bound is loose against that but tight
   against reintroducing option-boxed links or find_opt on the probe
   (each worth several words per hit). *)
let test_cache_hit_alloc_budget () =
  let c = Cache.create ~capacity:4 in
  let k = key () in
  Cache.add c k (ent "r");
  for _ = 1 to 100 do ignore (Cache.find c k) done;
  let iters = 10_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do ignore (Cache.find c k) done;
  let per_hit = (Gc.minor_words () -. w0) /. float_of_int iters in
  check_int "all hits" (100 + iters) (Cache.hits c);
  check_int "no misses" 0 (Cache.misses c);
  check_bool
    (Printf.sprintf "%.1f words/hit within budget" per_hit)
    true (per_hit <= 8.0)

(* ---------- admission queue ---------- *)

(* Deadline-free interactive pushes: the EDF queue degrades to exactly
   the old FIFO behavior (equal +inf deadlines break ties by admission
   order).  EDF ordering proper is covered in test_admission.ml. *)
let push q x =
  Admission.try_push q ~priority:Protocol.Interactive ~deadline:None x

let test_admission_bound () =
  let q = Admission.create ~capacity:2 () in
  check_bool "push 1" true (push q 1);
  check_bool "push 2" true (push q 2);
  check_bool "push 3 refused" false (push q 3);
  check_int "depth" 2 (Admission.length q);
  check_bool "fifo" true (Admission.pop q = Some 1);
  check_bool "freed a slot" true (push q 4)

let test_admission_close_drains () =
  let q = Admission.create ~capacity:4 () in
  ignore (push q 1);
  ignore (push q 2);
  Admission.close q;
  check_bool "push after close refused" false (push q 3);
  check_bool "drain 1" true (Admission.pop q = Some 1);
  check_bool "drain 2" true (Admission.pop q = Some 2);
  check_bool "then None" true (Admission.pop q = None);
  check_bool "closed" true (Admission.closed q)

let test_admission_close_wakes_blocked_pop () =
  let q : int Admission.t = Admission.create ~capacity:1 () in
  let result = ref (Some 0) in
  let th = Thread.create (fun () -> result := Admission.pop q) () in
  Thread.delay 0.05;
  Admission.close q;
  Thread.join th;
  check_bool "blocked pop returned None" true (!result = None)

(* ---------- protocol codec ---------- *)

let chain5 = Chain.make ~alpha:[| 4; 2; 7; 3; 5 |] ~beta:[| 6; 2; 9; 4 |]
let inline_chain =
  {|{"kind":"chain","alpha":[4,2,7,3,5],"beta":[6,2,9,4]}|}

let parse_ok line =
  match Protocol.parse_frame line with
  | Ok f -> f
  | Error (_, e) -> Alcotest.failf "unexpected parse error: %s" e.Protocol.message

let parse_err line =
  match Protocol.parse_frame line with
  | Ok _ -> Alcotest.failf "frame unexpectedly accepted: %s" line
  | Error (id, e) -> (id, e)

let test_parse_partition_frame () =
  let f =
    parse_ok
      (Printf.sprintf
         {|{"id":"r1","method":"partition","timeout_ms":250,"params":{"instance":%s,"k":9,"algorithm":"bottleneck"}}|}
         inline_chain)
  in
  check_bool "id" true (f.Protocol.id = Json.String "r1");
  check_bool "timeout" true (f.Protocol.timeout_ms = Some 250);
  check_bool "default priority" true
    (f.Protocol.priority = Protocol.Interactive);
  match f.Protocol.request with
  | Protocol.Partition { instance; k; algorithm } ->
      check_int "k" 9 k;
      check_bool "algorithm" true (algorithm = Protocol.Bottleneck);
      check_bool "instance canonical" true
        (Protocol.canonical_instance instance
        = Protocol.canonical_instance (Io.Chain_instance chain5))
  | _ -> Alcotest.fail "wrong request variant"

let test_parse_instance_text_and_inline_agree () =
  (* The two client spellings of one instance must canonicalize to one
     cache digest. *)
  let text = Io.to_string (Io.Chain_instance chain5) in
  let from_text =
    parse_ok
      (Printf.sprintf {|{"method":"partition","params":{"instance":%s,"k":9}}|}
         (Json.to_string (Json.String text)))
  in
  let from_inline =
    parse_ok
      (Printf.sprintf {|{"method":"partition","params":{"instance":%s,"k":9}}|}
         inline_chain)
  in
  match (from_text.Protocol.request, from_inline.Protocol.request) with
  | Protocol.Partition { instance = a; _ }, Protocol.Partition { instance = b; _ }
    ->
      Alcotest.(check string)
        "same digest"
        (Protocol.instance_digest a)
        (Protocol.instance_digest b)
  | _ -> Alcotest.fail "wrong request variants"

let test_parse_sweep_defaults () =
  let f =
    parse_ok
      (Printf.sprintf
         {|{"method":"sweep","params":{"instance":%s,"k_values":[9,7,9]}}|}
         inline_chain)
  in
  check_bool "no id becomes null" true (f.Protocol.id = Json.Null);
  match f.Protocol.request with
  | Protocol.Sweep { ks; algorithm; _ } ->
      Alcotest.(check (list int)) "ks as sent" [ 9; 7; 9 ] ks;
      check_bool "default algorithm" true (algorithm = Ksweep.Hitting)
  | _ -> Alcotest.fail "wrong request variant"

let test_parse_priority_and_zero_timeout () =
  (* timeout_ms 0 is legal ("already expired") and priority is an
     optional two-value enum defaulting to interactive. *)
  let f = parse_ok {|{"id":1,"method":"health","timeout_ms":0}|} in
  check_bool "timeout 0 accepted" true (f.Protocol.timeout_ms = Some 0);
  let b =
    parse_ok {|{"id":2,"method":"health","priority":"batch"}|}
  in
  check_bool "batch parsed" true (b.Protocol.priority = Protocol.Batch);
  let i =
    parse_ok {|{"id":3,"method":"health","priority":"interactive"}|}
  in
  check_bool "interactive parsed" true
    (i.Protocol.priority = Protocol.Interactive)

let test_parse_rejects () =
  let check_reject name line expect_id needle =
    let id, e = parse_err line in
    check_bool (name ^ ": id recovered") true (id = expect_id);
    check_bool (name ^ ": code") true (e.Protocol.code = Protocol.Bad_request);
    check_bool
      (Printf.sprintf "%s: message %S mentions %S" name e.Protocol.message
         needle)
      true
      (contains e.Protocol.message needle)
  in
  check_reject "not json" "][" Json.Null "offset";
  check_reject "not an object" "[1,2]" Json.Null "object";
  check_reject "missing method" {|{"id":7}|} (Json.Int 7) "method";
  check_reject "unknown method" {|{"id":7,"method":"zap"}|} (Json.Int 7)
    "unknown method";
  check_reject "bad id type" {|{"id":[1],"method":"health"}|} Json.Null "id";
  check_reject "bad timeout"
    {|{"id":1,"method":"health","timeout_ms":-1}|}
    (Json.Int 1) "timeout_ms";
  check_reject "bad priority"
    {|{"id":1,"method":"health","priority":"urgent"}|}
    (Json.Int 1) "priority";
  check_reject "bad k"
    (Printf.sprintf
       {|{"id":2,"method":"partition","params":{"instance":%s,"k":-3}}|}
       inline_chain)
    (Json.Int 2) "k";
  check_reject "sweep on tree"
    {|{"id":3,"method":"sweep","params":{"instance":{"kind":"tree","weights":[5,3],"parents":[[0,2]]},"k_values":[5]}}|}
    (Json.Int 3) "chain";
  check_reject "empty k_values"
    (Printf.sprintf
       {|{"id":4,"method":"sweep","params":{"instance":%s,"k_values":[]}}|}
       inline_chain)
    (Json.Int 4) "k_values";
  check_reject "oversized verify"
    {|{"id":5,"method":"verify","params":{"rounds":1000000}}|}
    (Json.Int 5) "rounds"

let test_render_envelopes () =
  let ok =
    Protocol.render_ok ~id:(Json.String "a") ~result:{|{"weight":11}|}
  in
  Alcotest.(check string)
    "ok envelope"
    {|{"schema":"tlp.rpc/v1","id":"a","ok":true,"result":{"weight":11}}|}
    ok;
  check_bool "ok validates" true (Json.is_valid ok);
  let err =
    Protocol.render_error ~id:Json.Null (Protocol.overloaded "queue full")
  in
  Alcotest.(check string)
    "error envelope"
    {|{"schema":"tlp.rpc/v1","id":null,"ok":false,"error":{"code":"overloaded","message":"queue full"}}|}
    err;
  check_bool "error validates" true (Json.is_valid err)

(* ---------- Json_out.parse ---------- *)

let test_json_parse_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\ntab\t");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("l", Json.List [ Json.Bool true; Json.Null; Json.Int 0 ]);
        ("o", Json.Obj [ ("nested", Json.List []) ]);
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Ok doc' ->
      Alcotest.(check string)
        "round trip" (Json.to_string doc) (Json.to_string doc')
  | Error msg -> Alcotest.failf "round trip failed: %s" msg

let test_json_parse_numbers_and_escapes () =
  check_bool "int" true (Json.parse "42" = Ok (Json.Int 42));
  check_bool "negative" true (Json.parse "-7" = Ok (Json.Int (-7)));
  check_bool "exponent is float" true (Json.parse "1e3" = Ok (Json.Float 1000.));
  check_bool "fraction is float" true (Json.parse "2.5" = Ok (Json.Float 2.5));
  check_bool "unicode escape" true
    (Json.parse {|"Aé"|} = Ok (Json.String "A\xc3\xa9"));
  check_bool "surrogate pair" true
    (Json.parse {|"😀"|} = Ok (Json.String "\xf0\x9f\x98\x80"))

let test_json_parse_rejects () =
  let rejects s =
    match Json.parse s with Ok _ -> false | Error _ -> true
  in
  check_bool "leading zero" true (rejects "01");
  check_bool "trailing garbage" true (rejects "1 x");
  check_bool "bare word" true (rejects "nulla");
  check_bool "unterminated string" true (rejects {|"abc|});
  check_bool "control char" true (rejects "\"a\nb\"");
  check_bool "trailing comma" true (rejects "[1,]");
  check_bool "empty input" true (rejects "");
  check_bool "lone minus" true (rejects "-")

(* ---------- loopback helpers ---------- *)

let with_server ?(jobs = 2) ?(queue = 8) ?(cache = 32) ?timeout_ms
    ?(debug = false) f =
  let config =
    {
      Server.default_config with
      Server.port = 0;
      jobs;
      queue_capacity = queue;
      cache_capacity = cache;
      default_timeout_ms = timeout_ms;
      enable_debug = debug;
    }
  in
  let srv = Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Server.wait srv)
    (fun () -> f srv)

(* One-shot exchange: connect, send every line, half-close, read to EOF.
   Responses may arrive out of request order (that is part of the
   protocol); callers correlate by id. *)
let exchange port lines =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  let payload = String.concat "\n" lines ^ "\n" in
  let bytes = Bytes.of_string payload in
  let n = Bytes.length bytes in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd bytes !written (n - !written)
  done;
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec read_all () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | r ->
        Buffer.add_subbytes buf chunk 0 r;
        read_all ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_all ()
  in
  read_all ();
  Unix.close fd;
  List.filter
    (fun l -> String.trim l <> "")
    (String.split_on_char '\n' (Buffer.contents buf))

let response_id line =
  match Json.parse line with
  | Ok (Json.Obj fields) -> (
      match List.assoc_opt "id" fields with Some id -> id | None -> Json.Null)
  | _ -> Alcotest.failf "unparseable response: %s" line

let find_response responses id =
  match List.find_opt (fun l -> response_id l = id) responses with
  | Some l -> l
  | None -> Alcotest.failf "no response with id %s" (Json.to_string id)

let error_code line =
  match Json.parse line with
  | Ok (Json.Obj fields) -> (
      match List.assoc_opt "error" fields with
      | Some (Json.Obj err) -> (
          match List.assoc_opt "code" err with
          | Some (Json.String c) -> Some c
          | _ -> None)
      | _ -> None)
  | _ -> None

let partition_line ~id ~k ?(algorithm = "bandwidth") () =
  Printf.sprintf
    {|{"id":%d,"method":"partition","params":{"instance":%s,"k":%d,"algorithm":"%s"}}|}
    id inline_chain k algorithm

let reference_partition ~id ~k ~algorithm =
  match
    Handler.partition_result (Io.Chain_instance chain5) ~k ~algorithm
  with
  | Ok doc -> Protocol.render_ok ~id:(Json.Int id) ~result:(Json.to_string doc)
  | Error _ -> Alcotest.fail "reference partition unexpectedly failed"

(* ---------- loopback: end to end ---------- *)

let test_loopback_byte_identical () =
  with_server (fun srv ->
      let port = Server.port srv in
      (* Concurrent clients: partitions under three algorithms plus a
         sweep, each exchanged on its own connection from its own
         thread. *)
      let sweep_line =
        Printf.sprintf
          {|{"id":100,"method":"sweep","params":{"instance":%s,"k_values":[7,9,12],"algorithm":"deque"}}|}
          inline_chain
      in
      let requests =
        [
          partition_line ~id:1 ~k:9 ();
          partition_line ~id:2 ~k:9 ~algorithm:"bottleneck" ();
          partition_line ~id:3 ~k:9 ~algorithm:"pipeline" ();
          sweep_line;
        ]
      in
      let results = Array.make (List.length requests) [] in
      let threads =
        List.mapi
          (fun i line ->
            Thread.create (fun () -> results.(i) <- exchange port [ line ]) ())
          requests
      in
      List.iter Thread.join threads;
      let responses = List.concat (Array.to_list results) in
      check_int "every request answered" 4 (List.length responses);
      let expect_partition id algorithm =
        Alcotest.(check string)
          (Printf.sprintf "partition %d byte-identical" id)
          (reference_partition ~id ~k:9 ~algorithm)
          (find_response responses (Json.Int id))
      in
      expect_partition 1 Protocol.Bandwidth;
      expect_partition 2 Protocol.Bottleneck;
      expect_partition 3 Protocol.Pipeline;
      let sweep_reference =
        Protocol.render_ok ~id:(Json.Int 100)
          ~result:
            (Json.to_string
               (Handler.sweep_result chain5 ~ks:[ 7; 9; 12 ]
                  ~algorithm:Ksweep.Deque))
      in
      Alcotest.(check string)
        "sweep byte-identical" sweep_reference
        (find_response responses (Json.Int 100)))

let test_loopback_cache_hit () =
  with_server (fun srv ->
      let port = Server.port srv in
      let st = Server.state srv in
      let cache_hits () =
        State.with_lock st (fun () -> Cache.hits (State.cache st))
      in
      let first = exchange port [ partition_line ~id:1 ~k:9 () ] in
      check_int "no hit on first request" 0 (cache_hits ());
      (* Same instance spelled as canonical text instead of inline
         arrays: still one cache entry. *)
      let text = Io.to_string (Io.Chain_instance chain5) in
      let second =
        exchange port
          [
            Printf.sprintf
              {|{"id":1,"method":"partition","params":{"instance":%s,"k":9}}|}
              (Json.to_string (Json.String text));
          ]
      in
      check_int "second request hit the cache" 1 (cache_hits ());
      Alcotest.(check (list string))
        "cached response byte-identical" first second;
      check_int "one cache entry" 1
        (State.with_lock st (fun () -> Cache.length (State.cache st))))

let test_loopback_verify_and_infeasible () =
  with_server (fun srv ->
      let port = Server.port srv in
      let responses =
        exchange port
          [
            {|{"id":1,"method":"verify","params":{"rounds":10,"seed":3}}|};
            partition_line ~id:2 ~k:1 ();
            (* k below max vertex weight *)
          ]
      in
      let verify_reference =
        Protocol.render_ok ~id:(Json.Int 1)
          ~result:(Json.to_string (Handler.verify_result ~rounds:10 ~seed:3))
      in
      Alcotest.(check string)
        "verify byte-identical (seeded from request)" verify_reference
        (find_response responses (Json.Int 1));
      let infeasible = find_response responses (Json.Int 2) in
      check_bool "infeasible is ok:true" true
        (error_code infeasible = None);
      check_bool "infeasible field present" true
        (contains infeasible "infeasible"))

let test_loopback_queue_full () =
  (* One worker, queue of one.  Jam the worker with a long sleep, then
     burst: exactly one request can sit in the queue, the rest must be
     answered [overloaded] immediately — not hang, not crash. *)
  with_server ~jobs:1 ~queue:1 ~debug:true (fun srv ->
      let port = Server.port srv in
      let jam =
        Thread.create
          (fun () ->
            ignore
              (exchange port [ {|{"id":0,"method":"sleep","params":{"ms":700}}|} ]))
          ()
      in
      Thread.delay 0.25 (* let the worker pop the jam request *);
      let burst =
        exchange port (List.map (fun id -> partition_line ~id ~k:9 ()) [ 1; 2; 3; 4 ])
      in
      Thread.join jam;
      check_int "burst fully answered" 4 (List.length burst);
      let overloaded, succeeded =
        List.partition (fun l -> error_code l = Some "overloaded") burst
      in
      check_int "queue admitted exactly one" 1 (List.length succeeded);
      check_int "rest overloaded" 3 (List.length overloaded);
      (* Health stays answerable while the solve queue is jammed. *)
      check_bool "control plane unaffected" true
        (error_code
           (List.hd (exchange port [ {|{"id":9,"method":"health"}|} ]))
        = None))

let test_loopback_timeout () =
  with_server ~jobs:1 ~queue:2 ~debug:true (fun srv ->
      let port = Server.port srv in
      let jam =
        Thread.create
          (fun () ->
            ignore
              (exchange port [ {|{"id":0,"method":"sleep","params":{"ms":600}}|} ]))
          ()
      in
      Thread.delay 0.25;
      (* Admitted behind the jam with a 50ms deadline: expired by the
         time a worker picks it up. *)
      let responses =
        exchange port
          [
            Printf.sprintf
              {|{"id":1,"method":"partition","timeout_ms":50,"params":{"instance":%s,"k":9}}|}
              inline_chain;
          ]
      in
      Thread.join jam;
      check_bool "deadline enforced" true
        (error_code (find_response responses (Json.Int 1)) = Some "timeout"))

let test_loopback_malformed_and_debug_gate () =
  (* debug defaults off: sleep must be rejected as unknown. *)
  with_server (fun srv ->
      let port = Server.port srv in
      let responses =
        exchange port
          [
            "][";
            {|{"id":1,"method":"sleep","params":{"ms":1}}|};
            {|{"id":2,"method":"health"}|};
          ]
      in
      check_int "all three answered" 3 (List.length responses);
      check_bool "malformed frame rejected, id null" true
        (error_code (find_response responses Json.Null) = Some "bad_request");
      check_bool "sleep rejected without debug" true
        (error_code (find_response responses (Json.Int 1)) = Some "bad_request");
      check_bool "health fine" true
        (error_code (find_response responses (Json.Int 2)) = None))

let test_loopback_stats_shape () =
  with_server (fun srv ->
      let port = Server.port srv in
      ignore (exchange port [ partition_line ~id:1 ~k:9 () ]);
      let stats = List.hd (exchange port [ {|{"id":7,"method":"stats"}|} ]) in
      check_bool "stats validates" true (Json.is_valid stats);
      match Json.parse stats with
      | Ok (Json.Obj fields) -> (
          match List.assoc_opt "result" fields with
          | Some (Json.Obj result) ->
              List.iter
                (fun field ->
                  check_bool (field ^ " present") true
                    (List.mem_assoc field result))
                [
                  "uptime_s";
                  "requests";
                  "errors";
                  "cache";
                  "queue";
                  "queue_depth";
                  "overruns";
                  "slow_ring";
                  "metrics";
                ]
          | _ -> Alcotest.fail "stats result not an object")
      | _ -> Alcotest.fail "stats response unparseable")

(* ---------- deadline-aware admission (EDF, shedding, overruns) ---------- *)

let stats_result srv =
  let stats =
    List.hd (exchange (Server.port srv) [ {|{"id":99,"method":"stats"}|} ])
  in
  match Json.parse stats with
  | Ok (Json.Obj fields) -> (
      match List.assoc_opt "result" fields with
      | Some (Json.Obj result) -> result
      | _ -> Alcotest.fail "stats result not an object")
  | _ -> Alcotest.fail "stats response unparseable"

let response_ids responses =
  List.filter_map
    (fun l -> match response_id l with Json.Int i -> Some i | _ -> None)
    responses

let test_loopback_edf_order () =
  (* One worker jammed by a long sleep; three partitions with deadlines
     5s, 1s, 3s pile up in the queue in that arrival order.  EDF must
     answer them 2, 3, 1 — deadline order, not arrival order. *)
  with_server ~jobs:1 ~debug:true (fun srv ->
      let port = Server.port srv in
      let jam =
        Thread.create
          (fun () ->
            ignore
              (exchange port [ {|{"id":0,"method":"sleep","params":{"ms":400}}|} ]))
          ()
      in
      Thread.delay 0.2 (* let the worker pop the jam request *);
      let line id timeout_ms =
        Printf.sprintf
          {|{"id":%d,"method":"partition","timeout_ms":%d,"params":{"instance":%s,"k":9}}|}
          id timeout_ms inline_chain
      in
      let responses =
        exchange port [ line 1 5_000; line 2 1_000; line 3 3_000 ]
      in
      Thread.join jam;
      Alcotest.(check (list int))
        "completed in deadline order" [ 2; 3; 1 ]
        (response_ids responses);
      List.iter
        (fun l -> check_bool "answered ok" true (error_code l = None))
        responses)

let test_loopback_priority_inversion () =
  (* Batch enqueued first, interactive admitted later: the interactive
     request must still be answered first once the worker frees up. *)
  with_server ~jobs:1 ~debug:true (fun srv ->
      let port = Server.port srv in
      let jam =
        Thread.create
          (fun () ->
            ignore
              (exchange port [ {|{"id":0,"method":"sleep","params":{"ms":400}}|} ]))
          ()
      in
      Thread.delay 0.2;
      let line id priority =
        Printf.sprintf
          {|{"id":%d,"method":"partition","priority":"%s","params":{"instance":%s,"k":9}}|}
          id priority inline_chain
      in
      let responses =
        exchange port [ line 1 "batch"; line 2 "interactive" ]
      in
      Thread.join jam;
      Alcotest.(check (list int))
        "interactive preempts earlier batch" [ 2; 1 ]
        (response_ids responses))

let test_loopback_shed_doomed () =
  (* Train the sleep estimate with a completed 120 ms sleep, then ask
     for a sleep under a 60 ms deadline: the estimator says ~120 ms, so
     the request is shed [overloaded] at admission — before solving —
     and counted in stats.queue.shed. *)
  with_server ~jobs:1 ~debug:true (fun srv ->
      let port = Server.port srv in
      let train =
        exchange port [ {|{"id":1,"method":"sleep","params":{"ms":120}}|} ]
      in
      check_bool "training sleep succeeded" true
        (error_code (find_response train (Json.Int 1)) = None);
      let shed =
        exchange port
          [ {|{"id":2,"method":"sleep","timeout_ms":60,"params":{"ms":10}}|} ]
      in
      check_bool "doomed request shed as overloaded" true
        (error_code (find_response shed (Json.Int 2)) = Some "overloaded");
      let result = stats_result srv in
      (match List.assoc_opt "queue" result with
      | Some (Json.Obj queue) ->
          check_bool "stats queue.shed counts it" true
            (List.assoc_opt "shed" queue = Some (Json.Int 1))
      | _ -> Alcotest.fail "stats queue not an object");
      check_int "shed visible via State.sheds" 1
        (State.with_lock (Server.state srv) (fun () ->
             State.sheds (Server.state srv))))

let test_loopback_overrun_accounting () =
  (* A fresh server has no sleep estimate, so a 150 ms sleep under a
     100 ms deadline is admitted, dispatched before expiry, and finishes
     ~50 ms late: answered ok, but recorded as an overrun in stats and
     surfaced as an overrun_ms trace span. *)
  with_server ~jobs:1 ~debug:true (fun srv ->
      let port = Server.port srv in
      let responses =
        exchange port
          [
            {|{"id":1,"method":"sleep","timeout_ms":100,"trace":true,"params":{"ms":150}}|};
          ]
      in
      let response = find_response responses (Json.Int 1) in
      check_bool "late completion still ok" true (error_code response = None);
      (match Json.parse response with
      | Ok (Json.Obj fields) -> (
          match List.assoc_opt "trace" fields with
          | Some (Json.Obj trace) -> (
              match List.assoc_opt "spans" trace with
              | Some (Json.Obj spans) -> (
                  match List.assoc_opt "overrun_ms" spans with
                  | Some (Json.Float o) ->
                      check_bool "overrun span is positive" true (o > 0.0)
                  | _ -> Alcotest.fail "overrun_ms span missing")
              | _ -> Alcotest.fail "trace spans missing")
          | _ -> Alcotest.fail "trace object missing")
      | _ -> Alcotest.fail "response unparseable");
      let result = stats_result srv in
      match List.assoc_opt "overruns" result with
      | Some (Json.Obj overruns) -> (
          match List.assoc_opt "sleep" overruns with
          | Some (Json.Obj o) ->
              check_bool "overrun counted" true
                (List.assoc_opt "count" o = Some (Json.Int 1));
              check_bool "max_ns positive" true
                (match List.assoc_opt "max_ns" o with
                | Some (Json.Int ns) -> ns > 0
                | _ -> false)
          | _ -> Alcotest.fail "no sleep overrun entry")
      | _ -> Alcotest.fail "stats overruns missing")

let test_loopback_zero_timeout_expired () =
  (* timeout_ms 0 parses and is answered with a structured timeout —
     never queued, never solved. *)
  with_server (fun srv ->
      let port = Server.port srv in
      let responses =
        exchange port
          [
            Printf.sprintf
              {|{"id":10,"method":"partition","timeout_ms":0,"params":{"instance":%s,"k":9}}|}
              inline_chain;
          ]
      in
      let response = find_response responses (Json.Int 10) in
      check_bool "expired on arrival is timeout" true
        (error_code response = Some "timeout");
      check_bool "message says expired" true (contains response "expired"))

(* ---------- request tracing ---------- *)

let test_trace_field_must_be_bool () =
  let rejected line =
    match Protocol.parse_frame line with
    | Error (_, { Protocol.code = Protocol.Bad_request; message }) ->
        contains message "trace"
    | _ -> false
  in
  check_bool "integer trace rejected" true
    (rejected {|{"id":1,"method":"health","trace":1}|});
  check_bool "string trace rejected" true
    (rejected {|{"id":1,"method":"health","trace":"yes"}|});
  (* Explicit false is fine and means untraced. *)
  match Protocol.parse_frame {|{"id":1,"method":"health","trace":false}|} with
  | Ok frame -> check_bool "trace false parses" false frame.Protocol.trace
  | Error _ -> Alcotest.fail "trace:false must parse"

let traced_partition_line ~id ~k =
  Printf.sprintf
    {|{"id":%d,"method":"partition","params":{"instance":%s,"k":%d,"algorithm":"bandwidth"},"trace":true}|}
    id inline_chain k

let test_loopback_traced_response () =
  with_server (fun srv ->
      let port = Server.port srv in
      let response =
        find_response
          (exchange port [ traced_partition_line ~id:5 ~k:9 ])
          (Json.Int 5)
      in
      check_bool "traced response validates" true (Json.is_valid response);
      match Json.parse response with
      | Ok (Json.Obj fields) -> (
          (* The result member must be exactly the untraced result. *)
          let reference =
            match
              Handler.partition_result (Io.Chain_instance chain5) ~k:9
                ~algorithm:Protocol.Bandwidth
            with
            | Ok doc -> doc
            | Error _ -> Alcotest.fail "reference partition failed"
          in
          check_bool "result unchanged by tracing" true
            (List.assoc_opt "result" fields = Some reference);
          match List.assoc_opt "trace" fields with
          | Some (Json.Obj trace) -> (
              check_bool "request_id is an integer" true
                (match List.assoc_opt "request_id" trace with
                | Some (Json.Int _) -> true
                | _ -> false);
              match List.assoc_opt "spans" trace with
              | Some (Json.Obj spans) ->
                  List.iter
                    (fun span ->
                      check_bool (span ^ " is a float") true
                        (match List.assoc_opt span spans with
                        | Some (Json.Float ms) -> ms >= 0.0
                        | _ -> false))
                    [ "accept_ms"; "queue_ms"; "solve_ms" ]
              | _ -> Alcotest.fail "trace.spans missing")
          | _ -> Alcotest.fail "traced response carries no trace object")
      | _ -> Alcotest.fail "traced response unparseable")

let test_loopback_trace_off_byte_identity () =
  with_server (fun srv ->
      let port = Server.port srv in
      (* Populate the cache through a TRACED request, then repeat the
         same request untraced: the hit must replay bytes identical to
         the direct library rendering — tracing may never leak into
         untraced responses, cached or not. *)
      ignore (exchange port [ traced_partition_line ~id:1 ~k:9 ]);
      let untraced =
        find_response
          (exchange port [ partition_line ~id:2 ~k:9 () ])
          (Json.Int 2)
      in
      Alcotest.(check string)
        "untraced hit byte-identical to library"
        (reference_partition ~id:2 ~k:9 ~algorithm:Protocol.Bandwidth)
        untraced)

let test_loopback_slow_ring () =
  with_server (fun srv ->
      let port = Server.port srv in
      ignore (exchange port [ traced_partition_line ~id:9 ~k:9 ]);
      let stats =
        find_response (exchange port [ {|{"id":7,"method":"stats"}|} ])
          (Json.Int 7)
      in
      match Json.parse stats with
      | Ok (Json.Obj fields) -> (
          match List.assoc_opt "result" fields with
          | Some (Json.Obj result) -> (
              check_bool "queue_depth is an integer" true
                (match List.assoc_opt "queue_depth" result with
                | Some (Json.Int d) -> d >= 0
                | _ -> false);
              match List.assoc_opt "slow_ring" result with
              | Some (Json.List (Json.Obj entry :: _)) ->
                  check_bool "entry method" true
                    (List.assoc_opt "method" entry
                    = Some (Json.String "partition"));
                  check_bool "entry ok" true
                    (List.assoc_opt "ok" entry = Some (Json.Bool true));
                  check_bool "entry spans include write_ms" true
                    (match List.assoc_opt "spans" entry with
                    | Some (Json.Obj spans) ->
                        List.for_all
                          (fun s -> List.mem_assoc s spans)
                          [
                            "accept_ms";
                            "queue_ms";
                            "solve_ms";
                            "render_ms";
                            "write_ms";
                          ]
                    | _ -> false)
              | _ -> Alcotest.fail "slow_ring empty after traced request")
          | _ -> Alcotest.fail "stats result not an object")
      | _ -> Alcotest.fail "stats response unparseable")

let test_shutdown_refuses_new_connections () =
  let port =
    with_server (fun srv ->
        let port = Server.port srv in
        ignore (exchange port [ {|{"id":1,"method":"health"}|} ]);
        port)
  in
  (* with_server stopped and drained the server; the port must be dead. *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let refused =
    match
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port))
    with
    | () -> false
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> true
  in
  Unix.close fd;
  check_bool "connection refused after drain" true refused

let suite =
  [
    Alcotest.test_case "cache: LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache: MRU order" `Quick test_cache_mru_order;
    Alcotest.test_case "cache: key components kept apart" `Quick
      test_cache_key_components;
    Alcotest.test_case "cache: counters and metrics" `Quick
      test_cache_counters_and_metrics;
    Alcotest.test_case "cache: refresh same key" `Quick
      test_cache_refresh_same_key;
    Alcotest.test_case "cache: capacity 0 disables" `Quick test_cache_disabled;
    Alcotest.test_case "cache: hit allocation budget" `Quick
      test_cache_hit_alloc_budget;
    Alcotest.test_case "admission: bound and fifo" `Quick test_admission_bound;
    Alcotest.test_case "admission: close drains" `Quick
      test_admission_close_drains;
    Alcotest.test_case "admission: close wakes blocked pop" `Quick
      test_admission_close_wakes_blocked_pop;
    Alcotest.test_case "protocol: partition frame" `Quick
      test_parse_partition_frame;
    Alcotest.test_case "protocol: instance spellings agree" `Quick
      test_parse_instance_text_and_inline_agree;
    Alcotest.test_case "protocol: sweep defaults" `Quick
      test_parse_sweep_defaults;
    Alcotest.test_case "protocol: rejects with recovered ids" `Quick
      test_parse_rejects;
    Alcotest.test_case "protocol: response envelopes" `Quick
      test_render_envelopes;
    Alcotest.test_case "json: parse round trip" `Quick test_json_parse_roundtrip;
    Alcotest.test_case "json: numbers and escapes" `Quick
      test_json_parse_numbers_and_escapes;
    Alcotest.test_case "json: parse rejects" `Quick test_json_parse_rejects;
    Alcotest.test_case "loopback: byte-identical to library" `Quick
      test_loopback_byte_identical;
    Alcotest.test_case "loopback: cache hit replays bytes" `Quick
      test_loopback_cache_hit;
    Alcotest.test_case "loopback: verify + infeasible" `Quick
      test_loopback_verify_and_infeasible;
    Alcotest.test_case "loopback: queue full is overloaded" `Quick
      test_loopback_queue_full;
    Alcotest.test_case "loopback: queued deadline times out" `Quick
      test_loopback_timeout;
    Alcotest.test_case "loopback: malformed + debug gate" `Quick
      test_loopback_malformed_and_debug_gate;
    Alcotest.test_case "loopback: stats shape" `Quick test_loopback_stats_shape;
    Alcotest.test_case "loopback: EDF completes in deadline order" `Quick
      test_loopback_edf_order;
    Alcotest.test_case "loopback: interactive preempts batch" `Quick
      test_loopback_priority_inversion;
    Alcotest.test_case "loopback: doomed request shed" `Quick
      test_loopback_shed_doomed;
    Alcotest.test_case "loopback: overrun accounted" `Quick
      test_loopback_overrun_accounting;
    Alcotest.test_case "loopback: timeout_ms 0 expires on arrival" `Quick
      test_loopback_zero_timeout_expired;
    Alcotest.test_case "protocol: priority and zero timeout parse" `Quick
      test_parse_priority_and_zero_timeout;
    Alcotest.test_case "trace: field must be boolean" `Quick
      test_trace_field_must_be_bool;
    Alcotest.test_case "trace: traced response shape" `Quick
      test_loopback_traced_response;
    Alcotest.test_case "trace: off is byte-identical" `Quick
      test_loopback_trace_off_byte_identity;
    Alcotest.test_case "trace: slow ring in stats" `Quick
      test_loopback_slow_ring;
    Alcotest.test_case "loopback: drained port refuses" `Quick
      test_shutdown_refuses_new_connections;
  ]
