(* tlp_util: rng, stats, minheap, texttab, csv, timer.  The metrics
   subsystem has its own suite in test_metrics.ml. *)

open Helpers
module Stats = Tlp_util.Stats
module Minheap = Tlp_util.Minheap
module Texttab = Tlp_util.Texttab
module Csv_out = Tlp_util.Csv_out

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.next_int64 a = Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  check_bool "streams differ" true (!same < 4)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    check_bool "in [0,10)" true (x >= 0 && x < 10);
    let y = Rng.int_in rng 5 9 in
    check_bool "in [5,9]" true (y >= 5 && y <= 9)
  done

let test_rng_int_covers () =
  let rng = Rng.create 11 in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 10) <- true
  done;
  check_bool "all values hit" true (Array.for_all Fun.id seen)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_float_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    check_bool "in [0,2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_rng_split_independent () =
  let rng = Rng.create 9 in
  let s = Rng.split rng in
  check_bool "split differs from parent" true
    (Rng.next_int64 s <> Rng.next_int64 rng)

let test_rng_exponential_positive () =
  let rng = Rng.create 13 in
  for _ = 1 to 500 do
    check_bool "positive" true (Rng.exponential rng 10.0 >= 0.0)
  done

let test_stats_known () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean a);
  Alcotest.(check (float 1e-6)) "stddev" 1.290994 (Stats.stddev a);
  Alcotest.(check (float 1e-9)) "median" 2.5 (Stats.percentile a 50.0);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile a 0.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.percentile a 100.0)

let test_stats_summary () =
  let s = Stats.summarize [| 5.0; 1.0; 3.0 |] in
  check_int "count" 3 s.Stats.count;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "median" 3.0 s.Stats.median

let test_stats_edge_cases () =
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean [||]);
  Alcotest.(check (float 1e-9)) "stddev single" 0.0 (Stats.stddev [| 7.0 |]);
  Alcotest.check_raises "summarize empty"
    (Invalid_argument "Stats.summarize: empty array") (fun () ->
      ignore (Stats.summarize [||]))

let prop_minheap_sorts =
  qcheck ~count:200 "minheap pops in sorted order"
    QCheck2.Gen.(list_size (int_range 0 200) (int_range (-1000) 1000))
    (fun xs ->
      let h = Minheap.create ~cmp:compare in
      List.iter (Minheap.push h) xs;
      let rec drain acc =
        match Minheap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let test_minheap_basics () =
  let h = Minheap.create ~cmp:compare in
  check_bool "empty" true (Minheap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Minheap.pop h);
  Minheap.push h 5;
  Minheap.push h 2;
  Minheap.push h 8;
  Alcotest.(check (option int)) "peek" (Some 2) (Minheap.peek h);
  check_int "size" 3 (Minheap.size h);
  Alcotest.(check (option int)) "pop" (Some 2) (Minheap.pop h);
  Minheap.clear h;
  check_bool "cleared" true (Minheap.is_empty h)

let test_texttab_render () =
  let t = Texttab.create ~title:"demo" [ "name"; "value" ] in
  Texttab.add_row t [ "alpha"; "1" ];
  Texttab.add_row t [ "b"; "22" ];
  let s = Texttab.render t in
  check_bool "has title" true (String.length s > 0 && String.sub s 0 4 = "demo");
  check_bool "aligned header" true
    (String.split_on_char '\n' s
    |> List.exists (fun l -> l = "| name  | value |"))

let test_texttab_arity () =
  let t = Texttab.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Texttab.add_row: arity mismatch")
    (fun () -> Texttab.add_row t [ "only one" ])

let test_texttab_fmt () =
  Alcotest.(check string) "int" "1,234,567" (Texttab.fmt_int 1234567);
  Alcotest.(check string) "neg int" "-1,000" (Texttab.fmt_int (-1000));
  Alcotest.(check string) "small int" "42" (Texttab.fmt_int 42);
  Alcotest.(check string) "whole float" "12" (Texttab.fmt_float 12.0);
  Alcotest.(check string) "frac" "0.0450" (Texttab.fmt_float 0.045)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv_out.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv_out.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv_out.escape "a\"b");
  Alcotest.(check string) "row" "a,\"b,c\",d"
    (Csv_out.row_to_string [ "a"; "b,c"; "d" ])

let test_timer () =
  let x, dt = Tlp_util.Timer.time (fun () -> 42) in
  check_int "result" 42 x;
  check_bool "non-negative" true (dt >= 0.0);
  let x, dt = Tlp_util.Timer.time_median ~repeats:3 (fun () -> "ok") in
  Alcotest.(check string) "median result" "ok" x;
  check_bool "median non-negative" true (dt >= 0.0)

let suite =
  [
    Alcotest.test_case "rng is deterministic per seed" `Quick
      test_rng_deterministic;
    Alcotest.test_case "rng seeds give distinct streams" `Quick
      test_rng_seeds_differ;
    Alcotest.test_case "rng int stays in range" `Quick test_rng_int_range;
    Alcotest.test_case "rng int covers the range" `Quick test_rng_int_covers;
    Alcotest.test_case "shuffle is a permutation" `Quick
      test_rng_shuffle_permutation;
    Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "split stream is independent" `Quick
      test_rng_split_independent;
    Alcotest.test_case "exponential samples are positive" `Quick
      test_rng_exponential_positive;
    Alcotest.test_case "stats on known data" `Quick test_stats_known;
    Alcotest.test_case "summary fields" `Quick test_stats_summary;
    Alcotest.test_case "stats edge cases" `Quick test_stats_edge_cases;
    prop_minheap_sorts;
    Alcotest.test_case "minheap basics" `Quick test_minheap_basics;
    Alcotest.test_case "texttab renders aligned" `Quick test_texttab_render;
    Alcotest.test_case "texttab rejects bad arity" `Quick test_texttab_arity;
    Alcotest.test_case "number formatting" `Quick test_texttab_fmt;
    Alcotest.test_case "csv escaping" `Quick test_csv_escape;
    Alcotest.test_case "timer" `Quick test_timer;
  ]
