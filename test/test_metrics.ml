(* The metrics subsystem: a genuinely stateless null sink (the old
   Counters.null was a shared mutable hashtable that cross-contaminated
   default-sink runs), counter/span recording, and JSON rendering. *)

open Helpers
module Metrics = Tlp_util.Metrics
module Json_out = Tlp_util.Json_out
module Bandwidth = Tlp_core.Bandwidth
module Chain_gen = Tlp_graph.Chain_gen

(* Regression for the shared-mutable-null bug: two back-to-back solver
   runs with the default sink must observe zero retained state.  Under
   the old Counters.null this failed — `get null "scan_steps"` was
   nonzero after any default Bandwidth.naive call. *)
let test_default_sink_retains_nothing () =
  let chain = Chain_gen.figure2 (Rng.create 3) ~n:500 ~max_weight:50 in
  (match Bandwidth.naive chain ~k:200 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unexpected infeasibility");
  check_int "null sink saw nothing" 0 (Metrics.get Metrics.null "scan_steps");
  Alcotest.(check (list (pair string int)))
    "null sink has no counters" [] (Metrics.counters Metrics.null);
  (match Bandwidth.naive chain ~k:200 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unexpected infeasibility");
  check_int "still nothing after a second run" 0
    (Metrics.get Metrics.null "scan_steps");
  check_bool "null sink is null" true (Metrics.is_null Metrics.null)

let test_active_sinks_are_independent () =
  let chain = Chain_gen.figure2 (Rng.create 5) ~n:400 ~max_weight:50 in
  let run () =
    let m = Metrics.create () in
    (match Bandwidth.naive ~metrics:m chain ~k:200 with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "unexpected infeasibility");
    Metrics.get m "scan_steps"
  in
  let a = run () in
  let b = run () in
  check_bool "solver actually counted" true (a > 0);
  check_int "fresh sinks observe identical work" a b

let test_counters () =
  let m = Metrics.create () in
  check_int "unset" 0 (Metrics.get m "x");
  Metrics.bump m "x";
  Metrics.bump m "x";
  Metrics.add m "y" 5;
  check_int "bumped" 2 (Metrics.get m "x");
  check_int "added" 5 (Metrics.get m "y");
  Alcotest.(check (list (pair string int)))
    "sorted listing"
    [ ("x", 2); ("y", 5) ]
    (Metrics.counters m);
  Metrics.reset m;
  check_int "reset" 0 (Metrics.get m "x")

let test_null_is_noop () =
  Metrics.bump Metrics.null "x";
  Metrics.add Metrics.null "x" 100;
  check_int "writes dropped" 0 (Metrics.get Metrics.null "x");
  check_int "with_span passes through" 41
    (Metrics.with_span Metrics.null "span" (fun () -> 41));
  Alcotest.(check (list (pair string int)))
    "no counters" [] (Metrics.counters Metrics.null);
  check_bool "no spans" true (Metrics.spans Metrics.null = [])

let test_spans () =
  let m = Metrics.create () in
  let x = Metrics.with_span m "work" (fun () -> 1 + 1) in
  check_int "result threaded" 2 x;
  ignore (Metrics.with_span m "work" (fun () -> Array.make 10_000 0));
  (match Metrics.span m "work" with
  | None -> Alcotest.fail "span not recorded"
  | Some s ->
      check_int "two calls" 2 s.Metrics.count;
      check_bool "time is nonnegative" true (s.Metrics.total_s >= 0.0);
      check_bool "max <= total" true (s.Metrics.max_s <= s.Metrics.total_s +. 1e-9);
      check_bool "allocation observed" true (s.Metrics.alloc_words > 0.0));
  (* A raising thunk still records its span. *)
  (try
     Metrics.with_span m "boom" (fun () -> failwith "boom")
   with Failure _ -> ());
  match Metrics.span m "boom" with
  | Some s -> check_int "raised span recorded" 1 s.Metrics.count
  | None -> Alcotest.fail "raising span not recorded"

let test_merge_equals_sequential () =
  (* The parallel-engine contract at the metrics level: splitting work
     across private sinks and merging them reproduces the counters a
     single sequential sink would have recorded. *)
  let chain = Chain_gen.figure2 (Rng.create 9) ~n:300 ~max_weight:50 in
  let ks = [ 120; 250; 400; 800 ] in
  let sequential = Metrics.create () in
  List.iter
    (fun k ->
      match Bandwidth.deque ~metrics:sequential chain ~k with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "unexpected infeasibility")
    ks;
  let merged = Metrics.create () in
  List.iter
    (fun k ->
      let private_sink = Metrics.create () in
      (match Bandwidth.deque ~metrics:private_sink chain ~k with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "unexpected infeasibility");
      Metrics.merge merged private_sink)
    ks;
  Alcotest.(check (list (pair string int)))
    "merged counters equal sequential counters"
    (Metrics.counters sequential)
    (Metrics.counters merged)

let test_merge_null_endpoints () =
  let m = Metrics.create () in
  Metrics.add m "x" 4;
  Metrics.merge m Metrics.null;
  check_int "merging null in changes nothing" 4 (Metrics.get m "x");
  Metrics.merge Metrics.null m;
  check_bool "null stays empty" true (Metrics.counters Metrics.null = []);
  let src = Metrics.create () in
  Metrics.add src "x" 6;
  ignore (Metrics.with_span src "s" (fun () -> ()));
  Metrics.merge m src;
  check_int "counters add" 10 (Metrics.get m "x");
  check_int "src left unchanged" 6 (Metrics.get src "x");
  match Metrics.span m "s" with
  | Some s -> check_int "span merged" 1 s.Metrics.count
  | None -> Alcotest.fail "span not merged"

let test_json_rendering () =
  let m = Metrics.create () in
  Metrics.bump m "ops";
  Metrics.add m "weird \"name\"\twith\nescapes" 3;
  ignore (Metrics.with_span m "solve" (fun () -> ()));
  let text = Metrics.to_json_string m in
  check_bool "metrics JSON is well formed" true (Json_out.is_valid text);
  check_bool "null sink JSON is well formed" true
    (Json_out.is_valid (Metrics.to_json_string Metrics.null))

let test_json_out_validator () =
  let valid =
    [
      {|{}|}; {|[]|}; {|null|}; {|[1,2.5,-3e2,"a\nb",true,{"k":[]}]|};
      {| {"a": 1} |};
    ]
  in
  let invalid =
    [ ""; "{"; "[1,]"; "{'a':1}"; "[1] trailing"; "01"; "\"unterminated" ]
  in
  List.iter
    (fun s -> check_bool ("valid: " ^ s) true (Json_out.is_valid s))
    valid;
  List.iter
    (fun s -> check_bool ("invalid: " ^ s) false (Json_out.is_valid s))
    invalid;
  (* Round trip: everything the emitter produces must validate. *)
  let doc =
    Json_out.(
      Obj
        [
          ("s", String "q\"\\\n\t\x01");
          ("f", Float 1.5);
          ("nan", Float Float.nan);
          ("l", List [ Int 1; Bool false; Null ]);
        ])
  in
  check_bool "emitted document validates" true
    (Json_out.is_valid (Json_out.to_string doc))

let suite =
  [
    Alcotest.test_case "default sink retains no state across runs" `Quick
      test_default_sink_retains_nothing;
    Alcotest.test_case "independent active sinks" `Quick
      test_active_sinks_are_independent;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "null sink is a no-op" `Quick test_null_is_noop;
    Alcotest.test_case "spans record time and allocation" `Quick test_spans;
    Alcotest.test_case "merged sinks equal one sequential sink" `Quick
      test_merge_equals_sequential;
    Alcotest.test_case "merge null endpoints and src preservation" `Quick
      test_merge_null_endpoints;
    Alcotest.test_case "JSON rendering" `Quick test_json_rendering;
    Alcotest.test_case "JSON validator" `Quick test_json_out_validator;
  ]
