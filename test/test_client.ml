(* Tlp_client: deterministic backoff schedules, the socket-free retry
   driver under a fake clock, response classification, and a live
   loopback exercise of connection reuse and deadlines. *)

open Helpers
module Json = Tlp_util.Json_out
module Backoff = Tlp_client.Backoff
module Client = Tlp_client.Client
module Protocol = Tlp_server.Protocol
module Server = Tlp_server.Server

(* ---------- backoff schedules ---------- *)

let test_schedule_deterministic () =
  let policy =
    { Backoff.max_attempts = 6; base_delay_ms = 25; max_delay_ms = 400;
      jitter = 0.5 }
  in
  let s1 = Backoff.schedule policy (Rng.create 42) in
  let s2 = Backoff.schedule policy (Rng.create 42) in
  Alcotest.(check (list int)) "same seed, same schedule" s1 s2;
  check_int "max_attempts - 1 delays" 5 (List.length s1);
  (* Each delay is the jittered ladder value: within
     [(1 - jitter) * d, d] for d = min(base * 2^(i-1), cap). *)
  List.iteri
    (fun i delay ->
      let ladder = Stdlib.min (25 * (1 lsl i)) 400 in
      check_bool
        (Printf.sprintf "delay %d in [%d, %d]" delay (ladder / 2) ladder)
        true
        (delay >= (ladder / 2) - 1 && delay <= ladder))
    s1;
  let different = Backoff.schedule policy (Rng.create 43) in
  check_bool "different seed, different schedule" false (s1 = different)

let test_delay_caps_and_validates () =
  let policy =
    { Backoff.max_attempts = 10; base_delay_ms = 100; max_delay_ms = 250;
      jitter = 0.0 }
  in
  let rng = Rng.create 1 in
  check_int "attempt 1 at base" 100 (Backoff.delay_ms policy rng ~attempt:1);
  check_int "attempt 2 doubles" 200 (Backoff.delay_ms policy rng ~attempt:2);
  check_int "attempt 3 capped" 250 (Backoff.delay_ms policy rng ~attempt:3);
  check_int "attempt 60 still capped (no overflow)" 250
    (Backoff.delay_ms policy rng ~attempt:60);
  check_bool "attempt 0 rejected" true
    (match Backoff.delay_ms policy rng ~attempt:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- the retry driver, fake clock ---------- *)

type fake_error = Retry_me | Fatal

(* A fake clock that only advances when the driver sleeps: the test
   observes exactly the sleeps the policy dictates, with no real time. *)
let fake_clock () =
  let t = ref 0.0 in
  let slept = ref [] in
  let now () = !t in
  let sleep s =
    slept := s :: !slept;
    t := !t +. s
  in
  (now, sleep, slept)

let run_fake ?deadline ~policy ~seed outcomes =
  let now, sleep, slept = fake_clock () in
  let calls = ref 0 in
  let result =
    Backoff.run policy ~rng:(Rng.create seed) ~now ~sleep ?deadline
      ~retryable:(fun e -> e = Retry_me)
      ~on_deadline:(fun _ -> Fatal)
      (fun ~attempt ->
        incr calls;
        check_int "attempt number tracks calls" !calls attempt;
        match outcomes attempt with
        | Some v -> Ok v
        | None -> Error Retry_me)
  in
  (result, !calls, List.rev !slept)

let test_run_retries_to_budget () =
  let policy =
    { Backoff.max_attempts = 4; base_delay_ms = 10; max_delay_ms = 1_000;
      jitter = 0.5 }
  in
  (* Always failing retryably: every attempt is used, and the sleeps
     replay the policy's schedule for the same seed exactly. *)
  let result, calls, slept = run_fake ~policy ~seed:9 (fun _ -> None) in
  check_bool "exhausted budget returns the error" true (result = Error Retry_me);
  check_int "all attempts used" 4 calls;
  let expected = Backoff.schedule policy (Rng.create 9) in
  Alcotest.(check (list int))
    "slept the deterministic schedule"
    expected
    (List.map (fun s -> int_of_float (s *. 1000.0 +. 0.5)) slept);
  (* Success on attempt 3 stops immediately. *)
  let result, calls, slept =
    run_fake ~policy ~seed:9 (fun a -> if a = 3 then Some "ok" else None)
  in
  check_bool "eventual success" true (result = Ok "ok");
  check_int "stopped at success" 3 calls;
  check_int "slept only before successes" 2 (List.length slept)

let test_run_does_not_retry_fatal () =
  let policy = Backoff.default in
  let now, sleep, slept = fake_clock () in
  let calls = ref 0 in
  let result =
    Backoff.run policy ~rng:(Rng.create 1) ~now ~sleep
      ~retryable:(fun e -> e = Retry_me)
      ~on_deadline:(fun e -> e)
      (fun ~attempt:_ ->
        incr calls;
        Error Fatal)
  in
  check_bool "fatal returned unmapped" true (result = Error Fatal);
  check_int "exactly one attempt" 1 !calls;
  check_int "never slept" 0 (List.length !slept)

let test_run_deadline_mid_retry () =
  let policy =
    { Backoff.max_attempts = 10; base_delay_ms = 100; max_delay_ms = 100;
      jitter = 0.0 }
  in
  (* 100 ms per backoff, deadline at 250 ms: attempts at t=0, 0.1, 0.2,
     then the next backoff is clamped to the remaining 50 ms budget and
     one final attempt fires exactly at the deadline.  Only then — with
     the budget spent — is the error mapped through on_deadline. *)
  let result, calls, slept =
    run_fake ~policy ~seed:5 ~deadline:0.25 (fun _ -> None)
  in
  check_bool "deadline maps the error" true (result = Error Fatal);
  check_int "clamped sleep buys a final attempt" 4 calls;
  Alcotest.(check (list int))
    "last sleep clamped to the remaining budget" [ 100; 100; 50 ]
    (List.map (fun s -> int_of_float ((s *. 1000.0) +. 0.5)) slept)

let test_run_deadline_clamped_attempt_can_succeed () =
  let policy =
    { Backoff.max_attempts = 10; base_delay_ms = 100; max_delay_ms = 100;
      jitter = 0.0 }
  in
  (* The final attempt bought by the clamped sleep is a real attempt:
     if it succeeds, the call succeeds — the old driver would have
     given up at t=0.2 with 50 ms still on the clock. *)
  let result, calls, slept =
    run_fake ~policy ~seed:5 ~deadline:0.25
      (fun a -> if a = 4 then Some "late ok" else None)
  in
  check_bool "clamped final attempt succeeded" true (result = Ok "late ok");
  check_int "four attempts" 4 calls;
  check_int "three sleeps" 3 (List.length slept)

let test_run_deadline_exact_boundary () =
  let policy =
    { Backoff.max_attempts = 10; base_delay_ms = 100; max_delay_ms = 100;
      jitter = 0.0 }
  in
  (* Deadline lands exactly on an attempt: remaining budget is 0, so
     the driver maps through on_deadline without sleeping again — no
     zero-length sleep loop. *)
  let result, calls, slept =
    run_fake ~policy ~seed:5 ~deadline:0.2 (fun _ -> None)
  in
  check_bool "boundary maps the error" true (result = Error Fatal);
  check_int "three attempts (t=0, 0.1, 0.2)" 3 calls;
  check_int "two full sleeps only" 2 (List.length slept)

(* ---------- frames and classification ---------- *)

let test_request_line_shape () =
  let line =
    Client.request_line ~id:(Json.Int 3) ~timeout_ms:500 ~trace:true
      ~meth:"verify"
      ~params:(Json.Obj [ ("rounds", Json.Int 7); ("seed", Json.Int 1) ])
      ()
  in
  Alcotest.(check string)
    "bytes are stable"
    {|{"id":3,"method":"verify","timeout_ms":500,"trace":true,"params":{"rounds":7,"seed":1}}|}
    line;
  (* The server's own codec must accept every frame the client builds. *)
  match Protocol.parse_frame line with
  | Ok frame ->
      check_bool "id echoed" true (frame.Protocol.id = Json.Int 3);
      check_bool "trace flag" true frame.Protocol.trace;
      check_bool "timeout" true (frame.Protocol.timeout_ms = Some 500);
      Alcotest.(check string)
        "method" "verify"
        (Protocol.method_name frame.Protocol.request)
  | Error (_, e) -> Alcotest.failf "client frame rejected: %s" e.Protocol.message

let test_classify_response () =
  let ok =
    {|{"schema":"tlp.rpc/v1","id":4,"ok":true,"result":{"status":"ok"}}|}
  in
  (match Client.classify_response ok with
  | Ok r ->
      check_bool "id" true (r.Client.id = Json.Int 4);
      check_bool "result" true
        (r.Client.result = Json.Obj [ ("status", Json.String "ok") ]);
      check_bool "no trace" true (r.Client.trace = None);
      Alcotest.(check string) "raw preserved" ok r.Client.raw
  | Error e -> Alcotest.failf "ok misclassified: %s" (Client.error_to_string e));
  let wire code =
    Printf.sprintf
      {|{"schema":"tlp.rpc/v1","id":null,"ok":false,"error":{"code":"%s","message":"m"}}|}
      code
  in
  check_bool "overloaded" true
    (Client.classify_response (wire "overloaded") = Error (Client.Overloaded "m"));
  check_bool "timeout" true
    (Client.classify_response (wire "timeout") = Error (Client.Timeout "m"));
  check_bool "bad_request is an rpc error" true
    (Client.classify_response (wire "bad_request")
    = Error (Client.Rpc_error { code = "bad_request"; message = "m" }));
  let malformed = function
    | Error (Client.Bad_response _) -> true
    | _ -> false
  in
  check_bool "garbage" true (malformed (Client.classify_response "nonsense"));
  check_bool "wrong schema" true
    (malformed
       (Client.classify_response {|{"schema":"other/v9","ok":true,"result":1}|}));
  check_bool "missing result" true
    (malformed (Client.classify_response {|{"schema":"tlp.rpc/v1","ok":true}|}));
  check_bool "retryable classes" true
    (Client.retryable (Client.Overloaded "x")
    && Client.retryable (Client.Transport "x")
    && (not (Client.retryable (Client.Timeout "x")))
    && (not (Client.retryable (Client.Bad_response "x")))
    && not (Client.retryable (Client.Rpc_error { code = "c"; message = "m" })))

(* ---------- live loopback ---------- *)

let with_server ?(jobs = 2) ?(debug = false) f =
  let config =
    { Server.default_config with Server.port = 0; jobs; enable_debug = debug }
  in
  let srv = Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Server.wait srv)
    (fun () -> f (Server.port srv))

let test_live_connection_reuse () =
  with_server (fun port ->
      let client = Client.create ~port ~rng:(Rng.create 3) () in
      check_bool "not connected before first call" false
        (Client.is_connected client);
      for i = 1 to 5 do
        match Client.call client ~id:(Json.Int i) ~meth:"health" () with
        | Ok r -> check_bool "id echoed" true (r.Client.id = Json.Int i)
        | Error e -> Alcotest.failf "health: %s" (Client.error_to_string e)
      done;
      check_int "five calls, one dial" 1 (Client.connections client);
      Client.close client;
      check_bool "closed" false (Client.is_connected client);
      (* A closed client re-dials transparently. *)
      (match Client.call client ~meth:"health" () with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "after close: %s" (Client.error_to_string e));
      check_int "second dial" 2 (Client.connections client);
      Client.close client)

let test_live_dead_port_is_transport () =
  (* Ephemeral port from a server that is now fully drained. *)
  let dead = with_server (fun port -> port) in
  let client = Client.create ~port:dead ~rng:(Rng.create 3) () in
  (match Client.round_trip client {|{"method":"health"}|} with
  | Error (Client.Transport _) -> ()
  | Ok _ -> Alcotest.fail "dead port answered"
  | Error e -> Alcotest.failf "expected transport, got %s"
        (Client.error_to_string e));
  Client.close client

let test_live_deadline_times_out () =
  with_server ~debug:true (fun port ->
      let client = Client.create ~port ~rng:(Rng.create 3) () in
      match
        Client.call client ~deadline_ms:80 ~meth:"sleep"
          ~params:(Json.Obj [ ("ms", Json.Int 2_000) ])
          ()
      with
      | Error (Client.Timeout _) ->
          (* The connection is torn down so the late response cannot
             desync a later call. *)
          check_bool "connection dropped after timeout" false
            (Client.is_connected client)
      | Ok _ -> Alcotest.fail "sleep answered within the deadline"
      | Error e ->
          Alcotest.failf "expected timeout, got %s" (Client.error_to_string e))

let suite =
  [
    Alcotest.test_case "backoff: schedule deterministic" `Quick
      test_schedule_deterministic;
    Alcotest.test_case "backoff: ladder caps, validates" `Quick
      test_delay_caps_and_validates;
    Alcotest.test_case "backoff: retries to budget" `Quick
      test_run_retries_to_budget;
    Alcotest.test_case "backoff: fatal not retried" `Quick
      test_run_does_not_retry_fatal;
    Alcotest.test_case "backoff: deadline mid-retry" `Quick
      test_run_deadline_mid_retry;
    Alcotest.test_case "backoff: clamped final attempt succeeds" `Quick
      test_run_deadline_clamped_attempt_can_succeed;
    Alcotest.test_case "backoff: deadline exact boundary" `Quick
      test_run_deadline_exact_boundary;
    Alcotest.test_case "client: request line shape" `Quick
      test_request_line_shape;
    Alcotest.test_case "client: classify responses" `Quick
      test_classify_response;
    Alcotest.test_case "client: live connection reuse" `Quick
      test_live_connection_reuse;
    Alcotest.test_case "client: dead port is transport" `Quick
      test_live_dead_port_is_transport;
    Alcotest.test_case "client: live deadline" `Quick
      test_live_deadline_times_out;
  ]
