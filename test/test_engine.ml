(* The batch engine: domain pool scheduling, the determinism contract
   (parallel solve_batch byte-identical to the sequential fold), metrics
   merging across per-request sinks, and the incremental K-sweep against
   the one-shot solvers and the Prime_subpaths reference. *)

open Helpers
module Metrics = Tlp_util.Metrics
module Chain_gen = Tlp_graph.Chain_gen
module Prime_subpaths = Tlp_core.Prime_subpaths
module Hitting = Tlp_core.Bandwidth_hitting
module Pool = Tlp_engine.Pool
module Batch = Tlp_engine.Batch
module Ksweep = Tlp_engine.Ksweep

(* ---------- pool ---------- *)

let test_parallel_map_order () =
  let items = Array.init 100 (fun i -> i) in
  let results =
    Pool.with_pool ~jobs:4 (fun pool ->
        Pool.parallel_map pool (fun i -> (i * i) + 1) items)
  in
  Alcotest.(check (array int))
    "input order preserved"
    (Array.map (fun i -> (i * i) + 1) items)
    results

let test_parallel_map_empty () =
  let results =
    Pool.with_pool ~jobs:2 (fun pool -> Pool.parallel_map pool (fun i -> i) [||])
  in
  check_int "empty input" 0 (Array.length results)

let test_parallel_map_exception () =
  Pool.with_pool ~jobs:3 (fun pool ->
      match
        Pool.parallel_map pool
          (fun i -> if i = 17 then failwith "task 17" else i)
          (Array.init 40 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected the task failure to propagate"
      | exception Failure msg -> check_bool "message" true (msg = "task 17"));
  (* The pool survives a failed map and accepts more work. *)
  Pool.with_pool ~jobs:3 (fun pool ->
      let r = Pool.parallel_map pool (fun i -> i + 1) [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "pool still works" [| 2; 3; 4 |] r)

let test_pool_reuse_across_maps () =
  Pool.with_pool ~jobs:2 (fun pool ->
      for round = 1 to 5 do
        let r = Pool.parallel_map pool (fun i -> i * round) [| 1; 2; 3; 4 |] in
        Alcotest.(check (array int))
          "round result"
          [| round; 2 * round; 3 * round; 4 * round |]
          r
      done)

(* ---------- batch determinism ---------- *)

let random_requests rng count =
  List.init count (fun _ ->
      let n = 1 + Rng.int rng 40 in
      let alpha = Array.init n (fun _ -> 1 + Rng.int rng 20) in
      let beta =
        Array.init (Stdlib.max 0 (n - 1)) (fun _ -> 1 + Rng.int rng 30)
      in
      let chain = Tlp_graph.Chain.make ~alpha ~beta in
      (* Bias K low so some requests are infeasible. *)
      let k = 1 + Rng.int rng (2 * Tlp_graph.Chain.max_alpha chain) in
      let algorithm =
        match Rng.int rng 5 with
        | 0 -> Batch.Naive
        | 1 -> Batch.Heap
        | 2 -> Batch.Deque
        | 3 -> Batch.Hitting
        | _ -> Batch.Hitting_galloping
      in
      { Batch.chain; k; algorithm })

let test_batch_parallel_equals_sequential () =
  let requests = random_requests (Rng.create 42) 48 in
  let sequential = Batch.solve_batch ~seed:9 requests in
  let parallel = Batch.solve_batch ~jobs:4 ~seed:9 requests in
  check_int "same length" (List.length sequential) (List.length parallel);
  List.iteri
    (fun i (a, b) ->
      check_bool (Printf.sprintf "request %d identical" i) true (a = b))
    (List.combine sequential parallel);
  (* Byte-identical, not merely structurally equal. *)
  check_bool "marshalled representations identical" true
    (Marshal.to_string sequential [] = Marshal.to_string parallel [])

let test_batch_all_weights_optimal () =
  (* Every algorithm choice must return the same optimal weight, so a
     batch re-solved with a different algorithm map is weight-identical. *)
  let requests = random_requests (Rng.create 77) 30 in
  let as_algo a = List.map (fun r -> { r with Batch.algorithm = a }) requests in
  let weights rs =
    List.map
      (function Ok s -> Some s.Batch.weight | Error _ -> None)
      (Batch.solve_batch ~jobs:2 rs)
  in
  let reference = weights (as_algo Batch.Deque) in
  List.iter
    (fun a ->
      check_bool "weights agree across algorithms" true
        (weights (as_algo a) = reference))
    [ Batch.Naive; Batch.Heap; Batch.Hitting; Batch.Hitting_galloping ]

let test_batch_custom_rng_deterministic () =
  (* Custom algorithms see per-request RNG streams split from the batch
     seed; scheduling must not leak into what they draw. *)
  let chain = Chain_gen.figure2 (Rng.create 1) ~n:50 ~max_weight:20 in
  let custom =
    Batch.Custom
      (fun ~rng ~metrics:_ _chain ~k:_ ->
        Ok { Batch.cut = [ Rng.int rng 1000 ]; weight = Rng.int rng 1000 })
  in
  let requests =
    List.init 20 (fun _ -> { Batch.chain; k = 100; algorithm = custom })
  in
  let a = Batch.solve_batch ~seed:3 requests in
  let b = Batch.solve_batch ~jobs:4 ~seed:3 requests in
  check_bool "custom draws independent of scheduling" true (a = b)

let test_batch_metrics_merge_matches_sequential () =
  let requests = random_requests (Rng.create 11) 32 in
  let seq_metrics = Metrics.create () in
  let par_metrics = Metrics.create () in
  let seq = Batch.solve_batch ~metrics:seq_metrics requests in
  let par = Batch.solve_batch ~jobs:4 ~metrics:par_metrics requests in
  check_bool "outcomes agree" true (seq = par);
  Alcotest.(check (list (pair string int)))
    "merged counters equal sequential counters"
    (Metrics.counters seq_metrics)
    (Metrics.counters par_metrics)

(* ---------- metrics merge unit behavior (see also test_metrics.ml) ---------- *)

let test_merge_counters_and_spans () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add a "x" 2;
  Metrics.add b "x" 3;
  Metrics.add b "y" 7;
  ignore (Metrics.with_span b "solve" (fun () -> ()));
  Metrics.merge a b;
  check_int "counters add" 5 (Metrics.get a "x");
  check_int "new counters appear" 7 (Metrics.get a "y");
  (match Metrics.span a "solve" with
  | Some s -> check_int "span count carried" 1 s.Metrics.count
  | None -> Alcotest.fail "span not merged");
  (* src unchanged; null endpoints are no-ops. *)
  check_int "src untouched" 3 (Metrics.get b "x");
  Metrics.merge Metrics.null a;
  Metrics.merge a Metrics.null;
  check_int "null merge is a no-op" 5 (Metrics.get a "x")

(* ---------- K-sweep ---------- *)

let test_ksweep_matches_one_shot =
  qcheck ~count:200 "K-sweep entries match one-shot solves" small_chain_gen
    (fun (chain, k) ->
      let ks = [ k; k + 1; 2 * k; Stdlib.max 1 (k - 1) ] in
      let t = Ksweep.create chain in
      let swept = Ksweep.sweep t ~algorithm:Ksweep.Hitting ks in
      let sorted = List.sort_uniq compare ks in
      List.length swept = List.length sorted
      && List.for_all2
           (fun k entry ->
             match (entry, Hitting.solve chain ~k) with
             | Ok e, Ok { Hitting.cut; weight; _ } ->
                 e.Ksweep.k = k && e.Ksweep.weight = weight
                 && e.Ksweep.cut = cut
             | Error _, Error _ -> true
             | _ -> false)
           sorted swept)

let test_ksweep_decomposition_matches_reference =
  qcheck ~count:200 "two-pointer primes match Prime_subpaths" small_chain_gen
    (fun (chain, k) ->
      let t = Ksweep.create chain in
      (* Exercise workspace reuse: decompose at a couple of other K
         values first, then compare at k. *)
      ignore (Ksweep.decomposition t ~k:(k + 3));
      ignore (Ksweep.decomposition t ~k:(2 * k));
      match (Ksweep.decomposition t ~k, Prime_subpaths.compute chain ~k) with
      | Ok ranges, Ok primes ->
          let reference =
            Array.map
              (fun pr -> (pr.Prime_subpaths.a, pr.Prime_subpaths.b))
              primes.Prime_subpaths.primes
          in
          ranges = reference
      | Error _, Error _ -> true
      | _ -> false)

let test_ksweep_parallel_equals_sequential () =
  let chain = Chain_gen.figure2 (Rng.create 13) ~n:800 ~max_weight:50 in
  let ks = List.init 24 (fun i -> 60 + (i * 35)) in
  List.iter
    (fun algorithm ->
      let seq = Ksweep.sweep (Ksweep.create chain) ~algorithm ks in
      let par = Ksweep.sweep_parallel ~jobs:4 chain ~algorithm ks in
      check_bool "parallel sweep equals sequential" true (seq = par))
    [ Ksweep.Deque; Ksweep.Hitting ]

let test_ksweep_deque_agrees_with_hitting () =
  let chain = Chain_gen.figure2 (Rng.create 21) ~n:600 ~max_weight:40 in
  let t = Ksweep.create chain in
  let ks = List.init 16 (fun i -> 50 + (i * 45)) in
  let weights algorithm =
    List.map
      (function Ok e -> Some e.Ksweep.weight | Error _ -> None)
      (Ksweep.sweep t ~algorithm ks)
  in
  check_bool "deque and hitting sweeps agree" true
    (weights Ksweep.Deque = weights Ksweep.Hitting)

let suite =
  [
    Alcotest.test_case "parallel_map preserves input order" `Quick
      test_parallel_map_order;
    Alcotest.test_case "parallel_map on empty input" `Quick
      test_parallel_map_empty;
    Alcotest.test_case "parallel_map propagates exceptions" `Quick
      test_parallel_map_exception;
    Alcotest.test_case "pool reusable across maps" `Quick
      test_pool_reuse_across_maps;
    Alcotest.test_case "solve_batch ~jobs:4 byte-identical to sequential"
      `Quick test_batch_parallel_equals_sequential;
    Alcotest.test_case "optimal weights agree across algorithms" `Quick
      test_batch_all_weights_optimal;
    Alcotest.test_case "custom-algorithm RNG independent of scheduling" `Quick
      test_batch_custom_rng_deterministic;
    Alcotest.test_case "parallel metrics merge equals sequential" `Quick
      test_batch_metrics_merge_matches_sequential;
    Alcotest.test_case "Metrics.merge counters and spans" `Quick
      test_merge_counters_and_spans;
    test_ksweep_matches_one_shot;
    test_ksweep_decomposition_matches_reference;
    Alcotest.test_case "parallel K-sweep equals sequential" `Quick
      test_ksweep_parallel_equals_sequential;
    Alcotest.test_case "deque and hitting sweeps agree" `Quick
      test_ksweep_deque_agrees_with_hitting;
  ]
