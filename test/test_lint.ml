(* tlp-lint: rule fixtures (each rule fires on a minimal offending
   snippet and stays silent on sanctioned/clean code), allowlist
   semantics (suppression, mandatory justifications, staleness), exit
   codes, and the JSON report shape. *)

open Helpers
module Json_out = Tlp_util.Json_out
module Finding = Tlp_lint.Finding
module Rules = Tlp_lint.Rules
module Allowlist = Tlp_lint.Allowlist
module Driver = Tlp_lint.Driver

(* Run the rules on an inline fixture and compare ["RULE:symbol"] tags. *)
let check_rules name ~file source expected =
  match Rules.check_source ~file source with
  | Error e -> Alcotest.fail e
  | Ok fs ->
      Alcotest.(check (list string))
        name expected
        (List.map (fun f -> f.Finding.rule ^ ":" ^ f.Finding.symbol) fs)

(* R1: module-toplevel mutable state. *)

let test_r1_fires () =
  check_rules "toplevel ref" ~file:"lib/core/m.ml" "let cache = ref 0"
    [ "R1:cache" ];
  check_rules "toplevel hashtable" ~file:"lib/core/m.ml"
    "let table = Hashtbl.create 16" [ "R1:table" ];
  check_rules "Stdlib-qualified" ~file:"lib/core/m.ml"
    "let buf = Stdlib.Buffer.create 80" [ "R1:buf" ];
  check_rules "toplevel array" ~file:"lib/core/m.ml"
    "let scratch = Array.make 8 0" [ "R1:scratch" ];
  check_rules "array literal" ~file:"lib/core/m.ml" "let lut = [| 1; 2 |]"
    [ "R1:lut" ];
  check_rules "behind a tuple" ~file:"lib/core/m.ml"
    "let pair = (0, ref 1)" [ "R1:pair" ];
  check_rules "inside a submodule" ~file:"lib/core/m.ml"
    "module Inner = struct let q = Queue.create () end" [ "R1:q" ]

let test_r1_mutable_record () =
  check_rules "mutable record literal" ~file:"lib/core/m.ml"
    "type t = { mutable n : int }\nlet global = { n = 0 }" [ "R1:global" ];
  check_rules "immutable record literal" ~file:"lib/core/m.ml"
    "type t = { n : int }\nlet global = { n = 0 }" []

let test_r1_spares_functions () =
  check_rules "allocation under a lambda" ~file:"lib/core/m.ml"
    "let make () = ref 0" [];
  check_rules "named-arg function" ~file:"lib/core/m.ml"
    "let create ~size = Hashtbl.create size" [];
  check_rules "constants" ~file:"lib/core/m.ml"
    "let limit = 100\nlet name = \"x\"" [];
  (* R1 is a lib-only rule: bench and bin executables are single-main. *)
  check_rules "bench toplevel state exempt" ~file:"bench/m.ml"
    "let cache = ref 0" []

(* R2: direct nondeterminism outside the sanctioned wrappers. *)

let test_r2_fires () =
  check_rules "Random at any depth" ~file:"lib/core/m.ml"
    "let pick xs = List.nth xs (Random.int (List.length xs))"
    [ "R2:Random.int" ];
  check_rules "self_init" ~file:"lib/graph/m.ml"
    "let () = Random.self_init ()" [ "R2:Random.self_init" ];
  check_rules "gettimeofday in bench" ~file:"bench/m.ml"
    "let t0 = Unix.gettimeofday ()" [ "R2:Unix.gettimeofday" ];
  check_rules "Sys.time in bin" ~file:"bin/m.ml"
    "let stamp () = Sys.time ()" [ "R2:Sys.time" ]

let test_r2_sanctioned_modules () =
  check_rules "rng.ml may use Random" ~file:"lib/util/rng.ml"
    "let seed () = Random.bits ()" [];
  check_rules "timer.ml may read the clock" ~file:"lib/util/timer.ml"
    "let now () = Unix.gettimeofday ()" [];
  check_rules "tests are out of scope" ~file:"test/m.ml"
    "let t = Unix.gettimeofday ()" []

(* R3: partial and unsafe operations in library code. *)

let test_r3_fires () =
  check_rules "List.hd/tl" ~file:"lib/core/m.ml"
    "let f xs = (List.hd xs, List.tl xs)" [ "R3:List.hd"; "R3:List.tl" ];
  check_rules "Option.get" ~file:"lib/des/m.ml"
    "let g o = Option.get o" [ "R3:Option.get" ];
  check_rules "Obj" ~file:"lib/core/m.ml" "let h x = Obj.magic x"
    [ "R3:Obj.magic" ];
  check_rules "bare exit" ~file:"lib/core/m.ml" "let die () = exit 1"
    [ "R3:exit" ]

let test_r3_scope () =
  check_rules "bench exempt" ~file:"bench/m.ml" "let f xs = List.hd xs" [];
  check_rules "bin may exit" ~file:"bin/m.ml" "let die () = exit 1" [];
  check_rules "clean lib code" ~file:"lib/core/m.ml"
    "let f = function x :: _ -> Some x | [] -> None" []

(* Interprocedural rules R5-R8 need the whole pipeline (call graph +
   effect summaries), so their fixtures go through the driver.  The
   default [mli_exists] returns true, keeping R4 out of the way. *)
let check_project name files expected =
  let r = Driver.scan_files ~allowlist:[] files in
  Alcotest.(check (list string))
    name expected
    (List.map
       (fun f -> f.Finding.rule ^ ":" ^ f.Finding.symbol)
       r.Driver.findings)

(* R5: spawned code touching unsynchronized toplevel mutable state. *)

let test_r5_fires () =
  (* Direct: the spawned lambda writes the global itself. *)
  check_project "write inside Domain.spawn"
    [ ("bin/w.ml", "let counter = ref 0\nlet start () = Domain.spawn (fun () -> counter := 1)") ]
    [ "R5:Bin.W.counter" ];
  (* Transitive: the spawned function's summary carries touches_global
     even though no global appears at the spawn site. *)
  check_project "spawned function touches a global transitively"
    [ ("bin/x.ml",
       "let hits = ref 0\nlet record () = hits := !hits + 1\nlet run () = Domain.spawn record") ]
    [ "R5:Bin.X.record" ]

let test_r5_negative () =
  (* The same write under a mutex is synchronized — no finding. *)
  check_project "locked write in spawned code is clean"
    [ ("bin/w.ml",
       "let counter = ref 0\nlet start m = Domain.spawn (fun () -> Mutex.lock m; counter := 2; Mutex.unlock m)") ]
    [];
  (* Unspawned writes are R1's business (lib-only), not R5's. *)
  check_project "plain toplevel write without a spawn is not a race"
    [ ("bin/w.ml", "let counter = ref 0\nlet tick () = counter := !counter + 1") ]
    []

(* R6: nothing blocking or unaccountable inside a lock region. *)

let test_r6_fires () =
  (* A blocking builtin directly inside the region. *)
  check_project "I/O under a mutex"
    [ ("bin/locky.ml",
       "let m = Mutex.create ()\nlet bad () =\n  Mutex.lock m;\n  print_string \"hi\";\n  Mutex.unlock m") ]
    [ "R6:print_string" ];
  (* A project call whose *summary* says it blocks: the offending I/O
     is one hop away from the lock region. *)
  let r =
    Driver.scan_files ~allowlist:[]
      [ ("bin/cond.ml",
         "let m = Mutex.create ()\nlet slow () = print_string \"working\"\n\
          let bad () =\n  Mutex.lock m;\n  slow ();\n  Mutex.unlock m") ]
  in
  (match r.Driver.findings with
  | [ f ] ->
      Alcotest.(check string) "rule" "R6" f.Finding.rule;
      Alcotest.(check string) "symbol" "Bin.Cond.slow" f.Finding.symbol;
      (* The finding must carry the witness chain down to the I/O. *)
      check_bool "evidence reaches print_string" true
        (List.exists
           (fun e ->
             String.length e >= 12 && String.sub e 0 12 = "print_string")
           f.Finding.evidence)
  | fs -> Alcotest.failf "expected one R6 finding, got %d" (List.length fs))

let test_r6_negative () =
  (* Pure arithmetic under the lock is fine. *)
  check_project "pure section is clean"
    [ ("bin/locky.ml",
       "let m = Mutex.create ()\nlet good () =\n  Mutex.lock m;\n  let x = 1 + 2 in\n  ignore x;\n  Mutex.unlock m") ]
    [];
  (* Condition.wait releases the mutex to wait: the mechanism working
     as designed, explicitly exempt. *)
  check_project "Condition.wait is exempt"
    [ ("bin/cond.ml",
       "let m = Mutex.create ()\nlet c = Condition.create ()\nlet ready = ref false\n\
        let wait_ready () =\n  Mutex.lock m;\n  while not !ready do Condition.wait c m done;\n  Mutex.unlock m") ]
    []

(* R7: [@tlp.hot] functions must be transitively allocation-free. *)

let test_r7_fires () =
  (* Transitive: the allocation happens in an unannotated helper, but
     the budget belongs to the hot root that reaches it. *)
  let r =
    Driver.scan_files ~allowlist:[]
      [ ("bin/hot.ml",
         "let helper n = [ n; n + 1 ]\nlet[@tlp.hot] bad n = List.length (helper n)") ]
  in
  (match r.Driver.findings with
  | (f :: _) as fs ->
      List.iter
        (fun (g : Finding.t) ->
          Alcotest.(check string) "rule" "R7" g.Finding.rule)
        fs;
      (* Evidence spells out the hot root -> helper -> allocation path. *)
      Alcotest.(check string)
        "path starts at the hot root" "Bin.Hot.bad"
        (List.nth f.Finding.evidence 0);
      Alcotest.(check string)
        "second hop is the helper" "Bin.Hot.helper"
        (List.nth f.Finding.evidence 1)
  | [] -> Alcotest.fail "expected R7 findings through the helper")

let test_r7_function_arms () =
  (* [function]-form body (Pexp_function arms on 5.2, Pexp_function/
     Pexp_match shapes on 5.1) must flow through Ast_compat into the
     call-graph builder: both arms' allocations are charged to the hot
     binding. *)
  check_project "allocations in function-arms are found"
    [ ("bin/hot.ml",
       "let[@tlp.hot] pick = function 0 -> ref 0 | n -> [| n |]") ]
    [ "R7:ref"; "R7:array" ]

let test_r7_negative () =
  check_project "alloc-free hot chain is clean"
    [ ("bin/hot.ml",
       "let incr2 x = x + 2\nlet[@tlp.hot] fast x = incr2 (x * 3)") ]
    [];
  (* An allocating helper that no hot root reaches stays unflagged. *)
  check_project "cold allocations carry no budget"
    [ ("bin/hot.ml", "let helper n = [ n; n + 1 ]\nlet use n = helper n") ]
    []

(* R8: partiality propagates through project calls. *)

let test_r8_fires () =
  check_project "wrapper inherits the callee's partiality"
    [ ("lib/core/part.ml",
       "let first xs = List.hd xs\nlet wrapper xs = first xs") ]
    [ "R3:List.hd"; "R8:Tlp_core.Part.first" ]

let test_r8_negative () =
  (* Handling the exception discharges the hazard. *)
  check_project "try-wrapped call is clean"
    [ ("lib/core/part.ml",
       "let first xs = List.hd xs\nlet guarded xs = try first xs with Failure _ -> 0") ]
    [ "R3:List.hd" ];
  (* R8 follows R3's scope: bench code is exempt. *)
  check_project "bench wrappers are out of scope"
    [ ("bench/part.ml", "let first xs = List.hd xs\nlet wrapper xs = first xs") ]
    []

let test_syntax_error_reported () =
  match Rules.check_source ~file:"lib/core/m.ml" "let let let" with
  | Error msg ->
      check_bool "mentions the file" true
        (String.length msg > 0
        && String.sub msg 0 (String.length "lib/core/m.ml")
           = "lib/core/m.ml")
  | Ok _ -> Alcotest.fail "expected a syntax error"

(* Allowlist parsing and matching. *)

let test_allowlist_parse () =
  match
    Allowlist.parse ~path:".tlp-lint"
      "# comment\n\nR1 lib/core/m.ml cache -- per-module memo, guarded by \
       a mutex\n"
  with
  | Error msgs -> Alcotest.fail (String.concat "; " msgs)
  | Ok [ e ] ->
      Alcotest.(check string) "rule" "R1" e.Allowlist.rule;
      Alcotest.(check string) "file" "lib/core/m.ml" e.Allowlist.file;
      Alcotest.(check string) "symbol" "cache" e.Allowlist.symbol;
      Alcotest.(check string)
        "justification" "per-module memo, guarded by a mutex"
        e.Allowlist.justification
  | Ok es ->
      Alcotest.failf "expected exactly one entry, got %d" (List.length es)

let test_allowlist_requires_justification () =
  (match Allowlist.parse ~path:"a" "R1 lib/core/m.ml cache\n" with
  | Error [ msg ] ->
      check_bool "missing separator rejected" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "entry without justification must be rejected");
  (match Allowlist.parse ~path:"a" "R1 lib/core/m.ml cache --   \n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "blank justification must be rejected");
  match Allowlist.parse ~path:"a" "R1 cache -- too few fields\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong field count must be rejected"

(* Driver: suppression, staleness, exit codes, JSON shape. *)

let entry ?(rule = "R1") ?(file = "lib/core/m.ml") ?(symbol = "cache") () =
  {
    Allowlist.rule;
    file;
    symbol;
    justification = "test entry";
    source_line = 1;
  }

let test_driver_suppression () =
  let files = [ ("lib/core/m.ml", "let cache = ref 0") ] in
  let dirty = Driver.scan_files ~allowlist:[] files in
  check_int "finding without allowlist" 1 (List.length dirty.Driver.findings);
  check_int "dirty exit" 1 (Driver.exit_code dirty);
  let clean = Driver.scan_files ~allowlist:[ entry () ] files in
  check_int "suppressed" 1 (List.length clean.Driver.suppressed);
  check_int "no findings left" 0 (List.length clean.Driver.findings);
  check_int "clean exit" 0 (Driver.exit_code clean)

let test_driver_stale_entry () =
  let files = [ ("lib/core/m.ml", "let limit = 3") ] in
  let r = Driver.scan_files ~allowlist:[ entry () ] files in
  check_int "no findings" 0 (List.length r.Driver.findings);
  check_int "stale entry detected" 1 (List.length r.Driver.stale);
  check_int "stale fails the run" 1 (Driver.exit_code r)

let test_driver_r4 () =
  let files = [ ("lib/core/m.ml", "let limit = 3") ] in
  let missing =
    Driver.scan_files ~mli_exists:(fun _ -> false) ~allowlist:[] files
  in
  (match missing.Driver.findings with
  | [ f ] ->
      Alcotest.(check string) "rule" "R4" f.Finding.rule;
      Alcotest.(check string) "symbol" "m.ml" f.Finding.symbol
  | fs -> Alcotest.failf "expected one R4 finding, got %d" (List.length fs));
  let bench_only =
    Driver.scan_files
      ~mli_exists:(fun _ -> false)
      ~allowlist:[]
      [ ("bench/m.ml", "let x = 1") ]
  in
  check_int "R4 is lib-only" 0 (List.length bench_only.Driver.findings)

(* Exit-code contract: 1 means the verdict is "findings" — actionable
   lint output; 2 means the tool itself failed (unparseable source) and
   its verdict cannot be trusted.  CI gates must not conflate them. *)
let test_driver_exit_codes () =
  let dirty =
    Driver.scan_files ~allowlist:[] [ ("lib/core/m.ml", "let f xs = List.hd xs") ]
  in
  check_int "findings exit 1" 1 (Driver.exit_code dirty);
  let broken =
    Driver.scan_files ~allowlist:[] [ ("lib/core/m.ml", "let let let") ]
  in
  check_int "error recorded" 1 (List.length broken.Driver.errors);
  check_int "tool failure exits 2" 2 (Driver.exit_code broken);
  (* Errors take precedence: a half-parsed scan with findings is still
     a failed scan. *)
  let both =
    Driver.scan_files ~allowlist:[]
      [
        ("lib/core/m.ml", "let let let");
        ("lib/core/n.ml", "let f xs = List.hd xs");
      ]
  in
  check_int "error outranks findings" 2 (Driver.exit_code both)

(* Findings must come out sorted by (file, line, rule) no matter the
   order files were handed in or rules ran. *)
let test_finding_sort_order () =
  let r =
    Driver.scan_files ~allowlist:[]
      [
        (* zz before aa on purpose: the sort must not lean on input
           order. *)
        ("lib/core/zz.ml", "let f xs = List.hd xs\nlet g o = Option.get o");
        ("lib/core/aa.ml", "let h x = Obj.magic x");
      ]
  in
  Alcotest.(check (list string))
    "sorted by file, then line, then rule"
    [
      "lib/core/aa.ml:1:R3";
      "lib/core/zz.ml:1:R3";
      "lib/core/zz.ml:2:R3";
    ]
    (List.map
       (fun (f : Finding.t) ->
         Printf.sprintf "%s:%d:%s" f.Finding.file f.Finding.line f.Finding.rule)
       r.Driver.findings)

(* Symbol wildcard: [*] covers every symbol in a (rule, file) pair, but
   never crosses files or rules. *)
let test_allowlist_wildcard () =
  let files =
    [ ("lib/core/m.ml", "let f xs = List.hd xs\nlet g o = Option.get o") ]
  in
  let star = entry ~rule:"R3" ~symbol:"*" () in
  let r = Driver.scan_files ~allowlist:[ star ] files in
  check_int "both R3 findings suppressed" 2 (List.length r.Driver.suppressed);
  check_int "nothing left" 0 (List.length r.Driver.findings);
  check_int "wildcard that matched is not stale" 0 (List.length r.Driver.stale);
  let other_file = entry ~rule:"R3" ~file:"lib/core/other.ml" ~symbol:"*" () in
  let r2 = Driver.scan_files ~allowlist:[ other_file ] files in
  check_int "wildcard does not cross files" 2 (List.length r2.Driver.findings);
  check_int "unmatched wildcard is stale" 1 (List.length r2.Driver.stale)

let test_report_json_shape () =
  let r =
    Driver.scan_files
      ~allowlist:[ entry () ]
      [
        ("lib/core/m.ml", "let cache = ref 0");
        ("lib/core/bad.ml", "let f xs = List.hd xs");
      ]
  in
  let s = Json_out.to_string (Driver.to_json r) in
  (match Json_out.validate s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "report JSON invalid: %s" e);
  let has sub =
    let n = String.length s and k = String.length sub in
    let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
    go 0
  in
  check_bool "schema tag" true (has "\"schema\":\"tlp.lint/v1\"");
  check_bool "finding rule" true (has "\"rule\":\"R3\"");
  check_bool "justification carried" true (has "\"justification\":");
  check_bool "not ok with findings" true (has "\"ok\":false")

(* tlp.lint/v2: same report plus per-finding call-path evidence and the
   exit code in-band. *)
let test_report_json_v2_shape () =
  let r =
    Driver.scan_files ~allowlist:[]
      [
        ("lib/core/part.ml",
         "let first xs = List.hd xs\nlet wrapper xs = first xs");
      ]
  in
  let s = Json_out.to_string (Driver.to_json_v2 r) in
  (match Json_out.validate s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "v2 report JSON invalid: %s" e);
  let has sub =
    let n = String.length s and k = String.length sub in
    let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
    go 0
  in
  check_bool "v2 schema tag" true (has "\"schema\":\"tlp.lint/v2\"");
  check_bool "exit code in-band" true (has "\"exit_code\":1");
  check_bool "R8 finding present" true (has "\"rule\":\"R8\"");
  check_bool "evidence array present" true (has "\"evidence\":[");
  check_bool "call path names the partial leaf" true
    (has "Tlp_core.Part.wrapper\",\"Tlp_core.Part.first\"");
  (* v1 stays evidence-free: existing consumers see the same shape. *)
  let v1 = Json_out.to_string (Driver.to_json r) in
  let has1 sub =
    let n = String.length v1 and k = String.length sub in
    let rec go i = i + k <= n && (String.sub v1 i k = sub || go (i + 1)) in
    go 0
  in
  check_bool "v1 has no evidence field" false (has1 "\"evidence\":")

let test_json_validate_errors () =
  (match Json_out.validate "{\"a\": 1}" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid doc rejected: %s" e);
  (match Json_out.validate "{\"a\": 01}" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "leading zero accepted");
  match Json_out.validate "[1, 2" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unterminated array accepted"

(* End-to-end over a real directory tree, exercising file discovery and
   filesystem-backed R4. *)
let test_scan_real_tree () =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tlp_lint_test_%d" (Unix.getpid ()))
  in
  let lib = Filename.concat root "lib" in
  Unix.mkdir root 0o755;
  Unix.mkdir lib 0o755;
  let write name contents =
    Out_channel.with_open_bin (Filename.concat lib name) (fun oc ->
        output_string oc contents)
  in
  write "good.ml" "let double x = 2 * x\n";
  write "good.mli" "val double : int -> int\n";
  write "bad.ml" "let f xs = List.hd xs\n";
  let saved = Sys.getcwd () in
  Fun.protect
    ~finally:(fun () ->
      Sys.chdir saved;
      Array.iter
        (fun f -> Sys.remove (Filename.concat lib f))
        (Sys.readdir lib);
      Unix.rmdir lib;
      Unix.rmdir root)
    (fun () ->
      Sys.chdir root;
      let r = Driver.scan ~allowlist:[] ~roots:[ "lib" ] in
      check_int "both files scanned" 2 r.Driver.files_scanned;
      Alcotest.(check (list string))
        "R3 for List.hd and R4 for the missing mli"
        [ "R4:lib/bad.ml"; "R3:lib/bad.ml" ]
        (List.map
           (fun f -> f.Finding.rule ^ ":" ^ f.Finding.file)
           r.Driver.findings);
      check_int "exit 1" 1 (Driver.exit_code r))

let suite =
  [
    Alcotest.test_case "R1 fires on toplevel mutable state" `Quick
      test_r1_fires;
    Alcotest.test_case "R1 resolves mutable record fields" `Quick
      test_r1_mutable_record;
    Alcotest.test_case "R1 spares functions and non-lib code" `Quick
      test_r1_spares_functions;
    Alcotest.test_case "R2 fires on direct clock/random" `Quick test_r2_fires;
    Alcotest.test_case "R2 spares the sanctioned wrappers" `Quick
      test_r2_sanctioned_modules;
    Alcotest.test_case "R3 fires on partial operations" `Quick test_r3_fires;
    Alcotest.test_case "R3 scope: lib only" `Quick test_r3_scope;
    Alcotest.test_case "R5 fires on spawned global writes" `Quick
      test_r5_fires;
    Alcotest.test_case "R5 spares synchronized and unspawned writes" `Quick
      test_r5_negative;
    Alcotest.test_case "R6 fires on blocking calls under a mutex" `Quick
      test_r6_fires;
    Alcotest.test_case "R6 spares pure sections and Condition.wait" `Quick
      test_r6_negative;
    Alcotest.test_case "R7 charges transitive allocations to hot roots"
      `Quick test_r7_fires;
    Alcotest.test_case "R7 sees allocations in function-arms" `Quick
      test_r7_function_arms;
    Alcotest.test_case "R7 spares alloc-free and cold code" `Quick
      test_r7_negative;
    Alcotest.test_case "R8 propagates partiality to wrappers" `Quick
      test_r8_fires;
    Alcotest.test_case "R8 spares handled and out-of-scope calls" `Quick
      test_r8_negative;
    Alcotest.test_case "syntax errors are reported" `Quick
      test_syntax_error_reported;
    Alcotest.test_case "allowlist parses" `Quick test_allowlist_parse;
    Alcotest.test_case "allowlist requires justifications" `Quick
      test_allowlist_requires_justification;
    Alcotest.test_case "allowlist wildcard symbol" `Quick
      test_allowlist_wildcard;
    Alcotest.test_case "driver suppresses allowlisted findings" `Quick
      test_driver_suppression;
    Alcotest.test_case "driver flags stale allowlist entries" `Quick
      test_driver_stale_entry;
    Alcotest.test_case "driver enforces R4 interfaces" `Quick test_driver_r4;
    Alcotest.test_case "exit codes separate findings from tool failure"
      `Quick test_driver_exit_codes;
    Alcotest.test_case "findings are sorted by file, line, rule" `Quick
      test_finding_sort_order;
    Alcotest.test_case "report JSON validates and has the schema" `Quick
      test_report_json_shape;
    Alcotest.test_case "v2 report carries call-path evidence" `Quick
      test_report_json_v2_shape;
    Alcotest.test_case "Json_out.validate rejects malformed docs" `Quick
      test_json_validate_errors;
    Alcotest.test_case "end-to-end scan over a real tree" `Quick
      test_scan_real_tree;
  ]
