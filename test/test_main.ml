let () =
  Alcotest.run "tlp"
    [
      ("util", Test_util.suite);
      ("histogram", Test_histogram.suite);
      ("lint", Test_lint.suite);
      ("metrics", Test_metrics.suite);
      ("engine", Test_engine.suite);
      ("server", Test_server.suite);
      ("frame", Test_frame.suite);
      ("admission", Test_admission.suite);
      ("client", Test_client.suite);
      ("load", Test_load.suite);
      ("graph", Test_graphlib.suite);
      ("primes", Test_primes.suite);
      ("bandwidth", Test_bandwidth.suite);
      ("chain-bottleneck", Test_chain_bottleneck.suite);
      ("tree-algorithms", Test_tree_algos.suite);
      ("theorem1", Test_theorem1.suite);
      ("tree-bandwidth", Test_tree_bandwidth.suite);
      ("supergraph", Test_supergraph.suite);
      ("baselines", Test_baselines.suite);
      ("archsim", Test_archsim.suite);
      ("des", Test_des.suite);
      ("realtime", Test_realtime.suite);
      ("extensions", Test_extensions.suite);
      ("conservative", Test_conservative.suite);
      ("tree-sim", Test_tree_sim.suite);
      ("io", Test_io.suite);
      ("host-satellite", Test_host_satellite.suite);
      ("timewarp", Test_timewarp.suite);
      ("gantt", Test_gantt.suite);
      ("circuit-families", Test_circuit_families.suite);
      ("scaled", Test_scaled.suite);
      ("hetero-annealing", Test_hetero.suite);
      ("complexity", Test_complexity.suite);
      ("dot", Test_dot.suite);
    ]
