(* Instance file round trips and parse errors. *)

open Helpers
module Io = Tlp_graph.Instance_io

let test_chain_roundtrip () =
  let c = Chain.of_lists [ 3; 1; 4; 1; 5 ] [ 9; 2; 6; 5 ] in
  match Io.parse (Io.to_string (Io.Chain_instance c)) with
  | Ok (Io.Chain_instance c') ->
      Alcotest.(check (array int)) "alpha" c.Chain.alpha c'.Chain.alpha;
      Alcotest.(check (array int)) "beta" c.Chain.beta c'.Chain.beta
  | _ -> Alcotest.fail "roundtrip failed"

let test_tree_roundtrip () =
  let t =
    Tree.make ~weights:[| 5; 3; 2; 7 |]
      ~edges:[ (0, 1, 10); (1, 2, 20); (1, 3, 30) ]
  in
  match Io.parse (Io.to_string (Io.Tree_instance t)) with
  | Ok (Io.Tree_instance t') ->
      Alcotest.(check (array int)) "weights" t.Tree.weights t'.Tree.weights;
      Alcotest.(check int) "edges" (Tree.n_edges t) (Tree.n_edges t');
      Alcotest.(check int) "delta" (Tree.delta t 1) (Tree.delta t' 1)
  | _ -> Alcotest.fail "roundtrip failed"

let test_comments_and_blanks () =
  let text = "# a comment\n\nchain\n1 2 3\n\n# weights\n4 5\n" in
  match Io.parse text with
  | Ok (Io.Chain_instance c) -> check_int "n" 3 (Chain.n c)
  | _ -> Alcotest.fail "expected chain"

let test_parse_errors () =
  check_bool "empty" true (Result.is_error (Io.parse ""));
  check_bool "unknown kind" true (Result.is_error (Io.parse "mesh\n1 2\n"));
  check_bool "bad number" true (Result.is_error (Io.parse "chain\na b\n"));
  check_bool "bad edge line" true
    (Result.is_error (Io.parse "tree\n1 1\n0 1\n"));
  check_bool "cycle rejected" true
    (Result.is_error (Io.parse "tree\n1 1 1\n0 1 1\n1 0 1\n"))

(* Files written on Windows or by spreadsheet exports arrive with CRLF
   endings and tab-separated fields; the parser must accept both. *)
let test_crlf_and_tabs () =
  let crlf = "chain\r\n1\t2 3\r\n4 5\r\n" in
  (match Io.parse crlf with
  | Ok (Io.Chain_instance c) ->
      Alcotest.(check (array int)) "alpha" [| 1; 2; 3 |] c.Chain.alpha;
      Alcotest.(check (array int)) "beta" [| 4; 5 |] c.Chain.beta
  | _ -> Alcotest.fail "CRLF chain should parse");
  let tabs = "tree\n5\t3\t2\n0\t1\t10\n1\t2\t20\n" in
  (match Io.parse tabs with
  | Ok (Io.Tree_instance t) ->
      Alcotest.(check (array int)) "weights" [| 5; 3; 2 |] t.Tree.weights;
      check_int "edges" 2 (Tree.n_edges t)
  | _ -> Alcotest.fail "tab-separated tree should parse");
  match Io.parse "tree\r\n1\t1\r\n0 1 7\r\n" with
  | Ok (Io.Tree_instance t) -> check_int "delta survives CRLF" 7 (Tree.delta t 0)
  | _ -> Alcotest.fail "CRLF tree should parse"

let test_error_names_line_and_token () =
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  (match Io.parse "# header comment\nchain\n1 oops 3\n4 5\n" with
  | Error msg ->
      check_bool ("names the line: " ^ msg) true (contains msg "line 3");
      check_bool ("names the token: " ^ msg) true (contains msg "\"oops\"")
  | Ok _ -> Alcotest.fail "bad token should fail");
  match Io.parse "tree\n1 1\n0 1\n" with
  | Error msg -> check_bool ("names edge line: " ^ msg) true (contains msg "line 3")
  | Ok _ -> Alcotest.fail "short edge line should fail"

let prop_random_chain_roundtrip =
  qcheck ~count:200 "random chain file round trip"
    QCheck2.(Gen.map fst small_chain_gen)
    (fun c ->
      match Io.parse (Io.to_string (Io.Chain_instance c)) with
      | Ok (Io.Chain_instance c') ->
          c.Chain.alpha = c'.Chain.alpha && c.Chain.beta = c'.Chain.beta
      | _ -> false)

let prop_random_tree_roundtrip =
  qcheck ~count:200 "random tree file round trip"
    QCheck2.(Gen.map fst small_tree_gen)
    (fun t ->
      match Io.parse (Io.to_string (Io.Tree_instance t)) with
      | Ok (Io.Tree_instance t') ->
          t.Tree.weights = t'.Tree.weights && t.Tree.edges = t'.Tree.edges
      | _ -> false)

let suite =
  [
    Alcotest.test_case "chain round trip" `Quick test_chain_roundtrip;
    Alcotest.test_case "tree round trip" `Quick test_tree_roundtrip;
    Alcotest.test_case "comments and blank lines" `Quick test_comments_and_blanks;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "CRLF and tab separators" `Quick test_crlf_and_tabs;
    Alcotest.test_case "errors name line and token" `Quick
      test_error_names_line_and_token;
    prop_random_chain_roundtrip;
    prop_random_tree_roundtrip;
  ]
