(* Tlp_util.Histogram: exact bucket boundaries, merge as an
   associative/commutative exact operation, and quantiles checked
   against a sorted-array oracle. *)

open Helpers
module Histogram = Tlp_util.Histogram

(* ---------- bucket boundaries ---------- *)

let test_bucket_boundaries () =
  (* Every bucket's [low, high] range must map back to exactly that
     bucket, with no gap or overlap at either edge.  500 buckets cover
     values past one million — well beyond any latency we record. *)
  for b = 0 to 500 do
    let low = Histogram.bucket_low b and high = Histogram.bucket_high b in
    check_bool "low <= high" true (low <= high);
    check_int (Printf.sprintf "bucket_of low(%d)" b) b (Histogram.bucket_of low);
    check_int
      (Printf.sprintf "bucket_of high(%d)" b)
      b
      (Histogram.bucket_of high);
    check_int
      (Printf.sprintf "high(%d)+1 starts bucket %d" b (b + 1))
      (b + 1)
      (Histogram.bucket_of (high + 1));
    check_int
      (Printf.sprintf "low(%d) continues from high(%d)" (b + 1) b)
      (high + 1)
      (Histogram.bucket_low (b + 1))
  done;
  (* Values below 32 get exact unit buckets. *)
  for v = 0 to 31 do
    check_int "unit bucket" v (Histogram.bucket_of v);
    check_int "unit low" v (Histogram.bucket_low v);
    check_int "unit high" v (Histogram.bucket_high v)
  done;
  check_int "negatives clamp to bucket 0" 0 (Histogram.bucket_of (-17))

let test_bucket_relative_width () =
  (* Above the unit range the bucket width must stay within ~2^-5 of the
     value — that is the quantile error bound the mli promises. *)
  let v = ref 32 in
  while !v < 10_000_000 do
    let b = Histogram.bucket_of !v in
    let width = Histogram.bucket_high b - Histogram.bucket_low b + 1 in
    check_bool
      (Printf.sprintf "width %d at %d within 1/32" width !v)
      true
      (width * 32 <= Histogram.bucket_low b * 2);
    v := !v + (!v / 3) + 1
  done

(* ---------- recording ---------- *)

let test_totals_exact () =
  let h = Histogram.create () in
  check_int "empty count" 0 (Histogram.count h);
  check_int "empty quantile" 0 (Histogram.quantile h 0.5);
  List.iter (Histogram.add h) [ 5; 100; 3; 99_999; 0; 5 ];
  check_int "count" 6 (Histogram.count h);
  check_int "sum" (5 + 100 + 3 + 99_999 + 0 + 5) (Histogram.sum h);
  check_int "min exact" 0 (Histogram.min_value h);
  check_int "max exact" 99_999 (Histogram.max_value h);
  Histogram.add h (-7);
  check_int "negative clamps to 0" 7 (Histogram.count h);
  check_int "clamped adds nothing" (5 + 100 + 3 + 99_999 + 0 + 5)
    (Histogram.sum h);
  let total_bucketed =
    List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Histogram.buckets h)
  in
  check_int "buckets account for every observation" 7 total_bucketed

(* ---------- merge ---------- *)

let random_histogram rng n =
  let h = Histogram.create () in
  let values =
    Array.init n (fun _ ->
        (* Mix magnitudes so unit buckets and several octaves are hit. *)
        match Rng.int rng 3 with
        | 0 -> Rng.int rng 32
        | 1 -> Rng.int rng 5_000
        | _ -> Rng.int rng 2_000_000)
  in
  Array.iter (Histogram.add h) values;
  (h, values)

let assert_equal_histograms label a b =
  check_int (label ^ ": count") (Histogram.count a) (Histogram.count b);
  check_int (label ^ ": sum") (Histogram.sum a) (Histogram.sum b);
  check_int (label ^ ": min") (Histogram.min_value a) (Histogram.min_value b);
  check_int (label ^ ": max") (Histogram.max_value a) (Histogram.max_value b);
  check_bool (label ^ ": buckets") true
    (Histogram.buckets a = Histogram.buckets b)

let test_merge_matches_sequential_fold () =
  let rng = Rng.create 7 in
  let parts = List.init 4 (fun _ -> random_histogram rng 300) in
  (* Oracle: one histogram fed every value directly. *)
  let oracle = Histogram.create () in
  List.iter (fun (_, vs) -> Array.iter (Histogram.add oracle) vs) parts;
  let merged =
    List.fold_left
      (fun acc (h, _) -> Histogram.merge acc h)
      (Histogram.create ()) parts
  in
  assert_equal_histograms "fold = direct" merged oracle

let test_merge_associative_commutative () =
  let rng = Rng.create 21 in
  let a, _ = random_histogram rng 200 in
  let b, _ = random_histogram rng 150 in
  let c, _ = random_histogram rng 250 in
  assert_equal_histograms "commutative"
    (Histogram.merge a b) (Histogram.merge b a);
  assert_equal_histograms "associative"
    (Histogram.merge (Histogram.merge a b) c)
    (Histogram.merge a (Histogram.merge b c));
  (* Merge must not mutate its inputs. *)
  let count_a = Histogram.count a in
  ignore (Histogram.merge a b);
  check_int "merge leaves inputs alone" count_a (Histogram.count a);
  (* Empty is the identity. *)
  assert_equal_histograms "empty identity"
    (Histogram.merge a (Histogram.create ()))
    a

(* ---------- quantiles vs sorted oracle ---------- *)

let test_quantiles_against_sorted_oracle () =
  let rng = Rng.create 2026 in
  for round = 1 to 20 do
    let n = 1 + Rng.int rng 400 in
    let h, values = random_histogram rng n in
    let sorted = Array.copy values in
    Array.sort Stdlib.compare sorted;
    List.iter
      (fun q ->
        let rank =
          Stdlib.min (n - 1) (int_of_float (q *. float_of_int n))
        in
        let oracle = sorted.(rank) in
        let got = Histogram.quantile h q in
        (* The estimate must land in the same bucket as the true rank
           statistic (hence be exact below 32) and never exceed the
           recorded maximum. *)
        check_int
          (Printf.sprintf "round %d q=%.2f bucket" round q)
          (Histogram.bucket_of oracle)
          (Histogram.bucket_of got);
        if oracle < 32 then
          check_int (Printf.sprintf "round %d q=%.2f exact" round q) oracle got;
        check_bool "quantile <= max" true (got <= Histogram.max_value h);
        check_bool "quantile >= oracle" true (got >= oracle))
      [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ]
  done

let suite =
  [
    Alcotest.test_case "bucket boundaries are exact" `Quick
      test_bucket_boundaries;
    Alcotest.test_case "bucket relative width bounded" `Quick
      test_bucket_relative_width;
    Alcotest.test_case "totals exact, negatives clamp" `Quick test_totals_exact;
    Alcotest.test_case "merge = sequential fold" `Quick
      test_merge_matches_sequential_fold;
    Alcotest.test_case "merge associative and commutative" `Quick
      test_merge_associative_commutative;
    Alcotest.test_case "quantiles vs sorted oracle" `Quick
      test_quantiles_against_sorted_oracle;
  ]
