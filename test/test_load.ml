(* Tlp_load: plans as pure functions of the config (digest replay),
   every generated frame accepted by the server's own codec, and a live
   closed-loop run against the daemon. *)

open Helpers
module Json = Tlp_util.Json_out
module Protocol = Tlp_server.Protocol
module Server = Tlp_server.Server
module Workload = Tlp_load.Workload
module Runner = Tlp_load.Runner
module Report = Tlp_load.Report

let config =
  {
    Workload.default_config with
    Workload.seed = 11;
    workers = 3;
    requests = 50;
    corpus = 4;
    chain_n = 24;
    trace_every = 10;
  }

(* ---------- planning ---------- *)

let test_plan_replays_identically () =
  let p1 = Workload.plan config and p2 = Workload.plan config in
  Alcotest.(check string)
    "same config, same digest"
    (Workload.sequence_digest p1)
    (Workload.sequence_digest p2);
  check_bool "same lines" true
    (Array.for_all2
       (fun a b ->
         Array.for_all2
           (fun (x : Workload.op) (y : Workload.op) -> x.line = y.line)
           a b)
       p1.Workload.per_worker p2.Workload.per_worker);
  let other = Workload.plan { config with Workload.seed = 12 } in
  check_bool "different seed, different digest" false
    (Workload.sequence_digest p1 = Workload.sequence_digest other);
  (* Arrival mode must not leak into request bytes. *)
  let paced =
    Workload.plan { config with Workload.arrival = Workload.Poisson 50.0 }
  in
  Alcotest.(check string)
    "arrival mode does not change the bytes"
    (Workload.sequence_digest p1)
    (Workload.sequence_digest paced)

let test_plan_frames_parse () =
  let plan = Workload.plan config in
  let ops = Workload.ops plan in
  check_int "every request planned" config.Workload.requests (Array.length ops);
  Array.iteri
    (fun i (op : Workload.op) ->
      check_int "seq in order" i op.seq;
      match Protocol.parse_frame op.line with
      | Ok frame ->
          Alcotest.(check string)
            "method matches the op" op.Workload.meth
            (Protocol.method_name frame.Protocol.request);
          check_bool "id is the sequence number" true
            (frame.Protocol.id = Json.Int op.seq);
          check_bool "trace every 10th" true
            (frame.Protocol.trace = (op.seq mod 10 = 0))
      | Error (_, e) ->
          Alcotest.failf "frame %d rejected: %s" i e.Protocol.message)
    ops

let test_plan_structure () =
  let plan = Workload.plan config in
  (* Round-robin dealing. *)
  Array.iteri
    (fun w worker_ops ->
      Array.iter
        (fun (op : Workload.op) ->
          check_int "op on its worker" w (op.seq mod config.Workload.workers))
        worker_ops)
    plan.Workload.per_worker;
  (* Method counts add up; a degenerate mix is honoured. *)
  let counts = Workload.method_counts plan in
  check_int "counts cover every request" config.Workload.requests
    (List.fold_left (fun acc (_, c) -> acc + c) 0 counts);
  let all_partition =
    Workload.plan
      {
        config with
        Workload.mix = { Workload.partition = 1; sweep = 0; verify = 0 };
      }
  in
  List.iter
    (fun (m, c) ->
      check_int
        (Printf.sprintf "mix 1:0:0 puts everything on %s" m)
        (if m = "partition" then config.Workload.requests else 0)
        c)
    (Workload.method_counts all_partition);
  (* Arrival offsets: closed loop all zero; paced strictly within the
     run and non-decreasing. *)
  Array.iter
    (fun (op : Workload.op) -> check_bool "closed at 0" true (op.at_s = 0.0))
    (Workload.ops plan);
  let paced =
    Workload.ops
      (Workload.plan { config with Workload.arrival = Workload.Fixed_rate 100.0 })
  in
  Array.iteri
    (fun i (op : Workload.op) ->
      check_bool "fixed-rate schedule" true
        (Float.abs (op.at_s -. (float_of_int i /. 100.0)) < 1e-9))
    paced;
  let poisson =
    Workload.ops
      (Workload.plan { config with Workload.arrival = Workload.Poisson 100.0 })
  in
  Array.iteri
    (fun i (op : Workload.op) ->
      if i > 0 then
        check_bool "poisson arrivals non-decreasing" true
          (op.at_s >= poisson.(i - 1).Workload.at_s))
    poisson;
  check_bool "bad config rejected" true
    (match Workload.plan { config with Workload.workers = 0 } with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- live closed loop ---------- *)

let test_live_closed_loop () =
  let config =
    {
      Workload.default_config with
      Workload.seed = 5;
      workers = 2;
      requests = 40;
      corpus = 4;
      chain_n = 24;
      trace_every = 8;
    }
  in
  let server_config =
    { Server.default_config with Server.port = 0; jobs = 2 }
  in
  let srv = Server.start server_config in
  let result =
    Fun.protect
      ~finally:(fun () ->
        Server.stop srv;
        Server.wait srv)
      (fun () -> Runner.run ~port:(Server.port srv) (Workload.plan config))
  in
  let c = result.Runner.counts in
  check_int "all requests answered" 40 (Runner.total c);
  check_int "every request ok" 40 c.Runner.ok;
  check_int "no transport errors" 0 c.Runner.transport;
  check_int "no protocol violations" 0 c.Runner.bad_response;
  check_int "one connection per worker" 2 result.Runner.connections;
  check_int "traced responses came back" 5 result.Runner.traced;
  check_int "latencies recorded for every request" 40
    (Tlp_util.Histogram.count result.Runner.latency_us);
  check_bool "no failures listed" true (result.Runner.failures = []);
  (* The report renders to valid JSON with the plan's digest inside. *)
  let rendered = Json.to_string (Report.to_json result) in
  check_bool "report validates" true (Json.is_valid rendered);
  match Json.parse rendered with
  | Ok (Json.Obj fields) ->
      check_bool "schema stamped" true
        (List.assoc_opt "schema" fields = Some (Json.String Report.schema));
      check_bool "digest embedded" true
        (List.assoc_opt "digest" fields
        = Some (Json.String (Workload.sequence_digest result.Runner.plan)))
  | _ -> Alcotest.fail "report unparseable"

let suite =
  [
    Alcotest.test_case "plan replays identically" `Quick
      test_plan_replays_identically;
    Alcotest.test_case "every frame parses server-side" `Quick
      test_plan_frames_parse;
    Alcotest.test_case "plan structure" `Quick test_plan_structure;
    Alcotest.test_case "live closed loop" `Quick test_live_closed_loop;
  ]
