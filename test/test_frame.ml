(* The tlp.rpc/v2 binary framing: varint/decimal/Binval codec
   round trips, client-vs-server request-encoder byte equality, the
   v1/v2 response differential (every status, every error code),
   decoder fuzz on truncated and corrupted frames, live loopback
   negotiation with cache-hit byte equality, and the solver workspace
   pool. *)

open Helpers
module Json = Tlp_util.Json_out
module Bytebuf = Tlp_util.Bytebuf
module R = Tlp_util.Bytebuf.Reader
module Binval = Tlp_util.Binval
module Rng = Tlp_util.Rng
module Chain = Tlp_graph.Chain
module Io = Tlp_graph.Instance_io
module Ksweep = Tlp_engine.Ksweep
module Protocol = Tlp_server.Protocol
module Handler = Tlp_server.Handler
module Workspaces = Tlp_server.Workspaces
module Server = Tlp_server.Server
module Sframe = Tlp_server.Frame
module Cframe = Tlp_client.Frame
module Client = Tlp_client.Client

(* ---------- fixtures ---------- *)

let chain5 = Chain.make ~alpha:[| 4; 2; 7; 3; 5 |] ~beta:[| 6; 2; 9; 4 |]

let ints l = Json.List (List.map (fun i -> Json.Int i) l)

let chain_obj =
  Json.Obj
    [
      ("kind", Json.String "chain");
      ("alpha", ints [ 4; 2; 7; 3; 5 ]);
      ("beta", ints [ 6; 2; 9; 4 ]);
    ]

let tree_obj =
  Json.Obj
    [
      ("kind", Json.String "tree");
      ("weights", ints [ 5; 3; 2; 4 ]);
      ( "parents",
        Json.List [ ints [ 0; 7 ]; ints [ 0; 2 ]; ints [ 1; 3 ] ] );
    ]

let partition_params ?algorithm ~instance ~k () =
  Json.Obj
    ((match algorithm with
     | Some a -> [ ("algorithm", Json.String a) ]
     | None -> [])
    @ [ ("instance", instance); ("k", Json.Int k) ])

(* ---------- codec round trips ---------- *)

let test_varint_round_trip =
  qcheck "varint round trip"
    QCheck2.Gen.(oneof [ int_range 0 1000; int_range 0 max_int ])
    (fun v ->
      let buf = Bytebuf.create 16 in
      Bytebuf.add_varint buf v;
      let r =
        R.make (Bytebuf.unsafe_bytes buf) ~pos:0 ~limit:(Bytebuf.length buf)
      in
      R.varint r = v && R.remaining r = 0)

(* Wire varints are confined to [0, max_int] (the reader rejects a
   set sign bit), so zigzag's encodable domain is [min_int/2,
   max_int/2]: outside it the doubled magnitude overflows and the
   writer raises. Decoded values can never leave that domain, so
   encode and decode cover exactly the same ints; the generators stay
   inside it, and a dedicated case pins the boundary behavior. *)
let zigzag_min = min_int asr 1
let zigzag_max = max_int asr 1
let encodable_int = QCheck2.Gen.int_range zigzag_min zigzag_max

let test_zigzag_round_trip =
  qcheck "zigzag round trip"
    QCheck2.Gen.(oneof [ int_range (-1000) 1000; encodable_int ])
    (fun v ->
      let buf = Bytebuf.create 16 in
      Bytebuf.add_zigzag buf v;
      let r =
        R.make (Bytebuf.unsafe_bytes buf) ~pos:0 ~limit:(Bytebuf.length buf)
      in
      R.zigzag r = v && R.remaining r = 0)

let test_zigzag_domain_bounds () =
  let round_trips v =
    let buf = Bytebuf.create 16 in
    match Bytebuf.add_zigzag buf v with
    | () ->
        let r =
          R.make (Bytebuf.unsafe_bytes buf) ~pos:0 ~limit:(Bytebuf.length buf)
        in
        R.zigzag r = v
    | exception Invalid_argument _ -> false
  in
  check_bool "domain max round trips" true (round_trips zigzag_max);
  check_bool "domain min round trips" true (round_trips zigzag_min);
  check_bool "beyond max refused" false (round_trips (zigzag_max + 1));
  check_bool "beyond min refused" false (round_trips (zigzag_min - 1))

let test_decimal_matches_string_of_int =
  qcheck "add_decimal = string_of_int"
    QCheck2.Gen.(
      oneof
        [
          int;
          oneofl [ 0; -1; 9; 10; 99; 100; min_int; max_int; min_int + 1 ];
        ])
    (fun v ->
      let buf = Bytebuf.create 4 in
      Bytebuf.add_decimal buf v;
      Bytebuf.contents buf = string_of_int v)

let test_varint_reader_rejects () =
  let decodes s =
    let b = Bytes.of_string s in
    let r = R.make b ~pos:0 ~limit:(Bytes.length b) in
    match R.varint r with v -> Some v | exception R.Short -> None
  in
  check_bool "empty input" true (decodes "" = None);
  check_bool "dangling continuation" true (decodes "\x80" = None);
  check_bool "eleven groups" true
    (decodes "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01" = None);
  (* Ten groups whose top bits land in the sign bit: must be refused,
     not wrapped to a negative length. *)
  check_bool "sign-bit overflow" true
    (decodes "\xff\xff\xff\xff\xff\xff\xff\xff\xff\x7f" = None);
  check_bool "max_int decodes" true
    (let buf = Bytebuf.create 16 in
     Bytebuf.add_varint buf max_int;
     decodes (Bytebuf.contents buf) = Some max_int)

(* Random JSON-ish document: every Binval tag, nested a few levels. *)
let json_gen =
  let open QCheck2.Gen in
  sized_size (int_range 0 3) @@ fix (fun self n ->
      let scalar =
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun i -> Json.Int i) encodable_int;
            map (fun f -> Json.Float f)
              (oneof [ float; return 0.1; return 1e-300; return (-0.0) ]);
            map (fun s -> Json.String s) (small_string ~gen:printable);
          ]
      in
      if n = 0 then scalar
      else
        oneof
          [
            scalar;
            map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n - 1)));
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (int_range 0 4)
                 (pair (small_string ~gen:printable) (self (n - 1))));
          ])

let test_binval_round_trip =
  qcheck "binval round trip" json_gen (fun doc ->
      let buf = Bytebuf.create 64 in
      Binval.write buf doc;
      let r =
        R.make (Bytebuf.unsafe_bytes buf) ~pos:0 ~limit:(Bytebuf.length buf)
      in
      match Binval.read r with
      | Ok doc' -> Json.to_string doc = Json.to_string doc' && R.remaining r = 0
      | Error _ -> false)

let test_binval_float_exact () =
  (* Floats cross the v2 wire as IEEE bits, not decimal text: the bit
     pattern must survive exactly, including negative zero. *)
  List.iter
    (fun f ->
      let buf = Bytebuf.create 16 in
      Binval.write buf (Json.Float f);
      let r =
        R.make (Bytebuf.unsafe_bytes buf) ~pos:0 ~limit:(Bytebuf.length buf)
      in
      match Binval.read r with
      | Ok (Json.Float f') ->
          check_bool
            (Printf.sprintf "bits of %h" f)
            true
            (Int64.bits_of_float f = Int64.bits_of_float f')
      | _ -> Alcotest.failf "float %h did not round trip" f)
    [ 0.1; -0.0; 1e-300; 1e300; 4.0 /. 3.0; Float.pi; Float.min_float ]

(* ---------- digest parity ---------- *)

(* [Protocol.instance_digest] renders into a Bytebuf and hashes in
   place; it must equal the digest of the canonical string for every
   instance, or cache keys would silently diverge from v1 behavior. *)
let test_digest_parity_chain =
  qcheck "instance digest = MD5(canonical text), chains" small_chain_gen
    (fun (c, _k) ->
      let i = Io.Chain_instance c in
      Protocol.instance_digest i
      = Digest.to_hex (Digest.string (Protocol.canonical_instance i)))

let test_digest_parity_tree =
  qcheck "instance digest = MD5(canonical text), trees" small_tree_gen
    (fun (t, _k) ->
      let i = Io.Tree_instance t in
      Protocol.instance_digest i
      = Digest.to_hex (Digest.string (Protocol.canonical_instance i)))

(* ---------- request encoding: client vs server ---------- *)

(* The client encoder and the server's own encoder must produce the
   same bytes for every request both can express: the server side
   encodes the *parsed* v1 line, so equality proves the two framings
   describe one request space with one set of defaults. *)
let request_cases =
  [
    ("partition default algorithm", None, None, None, false, "partition",
     Some (partition_params ~instance:chain_obj ~k:9 ()));
    ("partition bandwidth", Some (Json.Int 1), None, None, false, "partition",
     Some (partition_params ~algorithm:"bandwidth" ~instance:chain_obj ~k:9 ()));
    ("partition bottleneck traced", Some (Json.Int 2), None, None, true,
     "partition",
     Some (partition_params ~algorithm:"bottleneck" ~instance:chain_obj ~k:9 ()));
    ("partition procmin on a tree", Some (Json.String "t"), None, None, false,
     "partition",
     Some (partition_params ~algorithm:"procmin" ~instance:tree_obj ~k:9 ()));
    ("partition pipeline with timeout", Some (Json.Int 3), Some 250, None,
     false, "partition",
     Some (partition_params ~algorithm:"pipeline" ~instance:chain_obj ~k:12 ()));
    ("partition batch priority", Some (Json.Int 4), None, Some "batch", false,
     "partition",
     Some (partition_params ~instance:chain_obj ~k:9 ()));
    ("sweep default algorithm", Some (Json.Int 5), None, None, false, "sweep",
     Some
       (Json.Obj
          [ ("instance", chain_obj); ("k_values", ints [ 7; 9; 12 ]) ]));
    ("sweep deque", Some (Json.Int 6), None, None, false, "sweep",
     Some
       (Json.Obj
          [
            ("algorithm", Json.String "deque");
            ("instance", chain_obj);
            ("k_values", ints [ 8; 9 ]);
          ]));
    ("verify defaults", Some (Json.Int 7), None, None, false, "verify", None);
    ("verify explicit", Some (Json.Int 8), None, None, false, "verify",
     Some (Json.Obj [ ("rounds", Json.Int 7); ("seed", Json.Int (-3)) ]));
    ("stats", Some (Json.Int 9), None, None, false, "stats", None);
    ("health", None, None, None, false, "health", None);
    ("sleep", Some (Json.Int 10), Some 50, None, false, "sleep",
     Some (Json.Obj [ ("ms", Json.Int 20) ]));
  ]

let test_request_encoders_agree () =
  List.iter
    (fun (label, id, timeout_ms, priority, trace, meth, params) ->
      let client_bytes =
        match
          Cframe.encode_request ?id ?timeout_ms ?priority ~trace ~meth ?params
            ()
        with
        | Ok s -> s
        | Error msg -> Alcotest.failf "%s: client encoder refused: %s" label msg
      in
      let line = Client.request_line ?id ?timeout_ms ?priority ~trace ~meth ?params () in
      let frame =
        match Protocol.parse_frame line with
        | Ok f -> f
        | Error (_, e) -> Alcotest.failf "%s: v1 parse failed: %s" label e.Protocol.message
      in
      let buf = Bytebuf.create 256 in
      Sframe.encode_request buf frame;
      Alcotest.(check string) label (Bytebuf.contents buf) client_bytes)
    request_cases

let test_text_instance_needs_v1 () =
  match
    Cframe.encode_request ~meth:"partition"
      ~params:
        (Json.Obj
           [
             ("instance", Json.String (Io.to_string (Io.Chain_instance chain5)));
             ("k", Json.Int 9);
           ])
      ()
  with
  | Ok _ -> Alcotest.fail "text instance must not be encodable"
  | Error msg -> check_bool "mentions v1" true (String.length msg > 0)

(* ---------- response differential (unit, deterministic) ---------- *)

let decode_payload payload =
  match Cframe.decode_response payload with
  | Ok p -> p
  | Error msg -> Alcotest.failf "response decode failed: %s" msg

let encode_response f =
  let buf = Bytebuf.create 256 in
  f buf;
  let s = Bytebuf.contents buf in
  String.sub s 4 (String.length s - 4)

let test_error_frames_differential () =
  List.iter
    (fun make_err ->
      let err = make_err "boom: details" in
      let id = Json.Int 42 in
      (* v2: server encoder -> client decoder. *)
      let payload =
        encode_response (fun buf -> Sframe.encode_error buf ~id err)
      in
      (match decode_payload payload with
      | Cframe.Rpc_err { id = id'; code; message } ->
          check_bool "id echoed" true (id' = id);
          Alcotest.(check string)
            "code" (Protocol.error_code_string err.Protocol.code) code;
          Alcotest.(check string) "message" err.Protocol.message message
      | Cframe.Result _ -> Alcotest.fail "error frame decoded as result");
      (* v1: same error through the JSON envelope. *)
      match Client.classify_response (Protocol.render_error ~id err) with
      | Error (Client.Overloaded m) ->
          check_bool "v1 overloaded" true (err.Protocol.code = Protocol.Overloaded);
          Alcotest.(check string) "v1 message" err.Protocol.message m
      | Error (Client.Timeout m) ->
          check_bool "v1 timeout" true (err.Protocol.code = Protocol.Timeout);
          Alcotest.(check string) "v1 message" err.Protocol.message m
      | Error (Client.Rpc_error { code; message }) ->
          Alcotest.(check string)
            "v1 code" (Protocol.error_code_string err.Protocol.code) code;
          Alcotest.(check string) "v1 message" err.Protocol.message message
      | _ -> Alcotest.fail "v1 error did not classify as an rpc error")
    [ Protocol.bad_request; Protocol.overloaded; Protocol.timeout;
      Protocol.internal ]

let test_ok_frames_differential () =
  let doc =
    match
      Handler.partition_result (Io.Chain_instance chain5) ~k:9
        ~algorithm:Protocol.Bandwidth
    with
    | Ok doc -> doc
    | Error _ -> Alcotest.fail "reference partition failed"
  in
  let trace = Json.Obj [ ("spans", ints [ 1; 2 ]); ("us", Json.Float 0.5) ] in
  let id = Json.String "req-1" in
  (* Plain result. *)
  (match
     decode_payload
       (encode_response (fun buf ->
            Sframe.encode_ok_doc buf ~id ~doc ~trace:None))
   with
  | Cframe.Result { id = id'; result; trace = None } ->
      check_bool "id echoed" true (id' = id);
      Alcotest.(check string) "result equal" (Json.to_string doc)
        (Json.to_string result)
  | _ -> Alcotest.fail "ok frame did not decode as plain result");
  (* Traced result; also check the pre-encoded splice path produces the
     same bytes as the direct-document path. *)
  let spliced =
    let b = Bytebuf.create 64 in
    Binval.write b doc;
    Bytebuf.contents b
  in
  let via_doc =
    encode_response (fun buf ->
        Sframe.encode_ok_doc buf ~id ~doc ~trace:(Some trace))
  in
  let via_splice =
    encode_response (fun buf ->
        Sframe.encode_ok buf ~id ~result:spliced ~trace:(Some trace))
  in
  Alcotest.(check string) "splice = direct" via_doc via_splice;
  match decode_payload via_doc with
  | Cframe.Result { result; trace = Some t; _ } ->
      Alcotest.(check string) "result equal" (Json.to_string doc)
        (Json.to_string result);
      Alcotest.(check string) "trace equal" (Json.to_string trace)
        (Json.to_string t)
  | _ -> Alcotest.fail "traced frame did not decode with a trace"

(* ---------- decoder fuzz ---------- *)

let valid_request_frame () =
  match
    Cframe.encode_request ~id:(Json.Int 7) ~timeout_ms:300 ~trace:true
      ~meth:"partition"
      ~params:(partition_params ~algorithm:"pipeline" ~instance:tree_obj ~k:9 ())
      ()
  with
  | Ok s -> s
  | Error msg -> Alcotest.failf "fixture frame refused: %s" msg

let test_request_decoder_truncation () =
  let frame = valid_request_frame () in
  let body = Bytes.of_string frame in
  let len = Bytes.length body - 4 in
  (match Sframe.decode_request body ~pos:4 ~len with
  | Ok _ -> ()
  | Error (_, e) -> Alcotest.failf "full frame rejected: %s" e.Protocol.message);
  for l = 0 to len - 1 do
    match Sframe.decode_request body ~pos:4 ~len:l with
    | Ok _ -> Alcotest.failf "truncated frame of %d bytes decoded" l
    | Error (_, e) ->
        check_bool "structured bad_request" true
          (e.Protocol.code = Protocol.Bad_request)
    | exception ex ->
        Alcotest.failf "truncation at %d raised %s" l (Printexc.to_string ex)
  done

let test_request_decoder_corruption =
  qcheck ~count:500 "corrupted request frames never raise"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 0 255))
    (fun (at, byte) ->
      let frame = valid_request_frame () in
      let body = Bytes.of_string frame in
      let len = Bytes.length body - 4 in
      Bytes.set body (4 + (at mod len)) (Char.chr byte);
      match Sframe.decode_request body ~pos:4 ~len with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let valid_response_payload () =
  encode_response (fun buf ->
      Sframe.encode_ok_doc buf ~id:(Json.Int 3)
        ~doc:(Json.Obj [ ("weight", Json.Int 3); ("q_mean", Json.Float 1.5) ])
        ~trace:(Some (Json.List [ Json.String "parse"; Json.Float 0.25 ])))

let test_response_decoder_truncation () =
  let payload = valid_response_payload () in
  check_bool "full payload decodes" true
    (match Cframe.decode_response payload with Ok _ -> true | Error _ -> false);
  for l = 0 to String.length payload - 1 do
    match Cframe.decode_response (String.sub payload 0 l) with
    | Ok _ -> Alcotest.failf "truncated payload of %d bytes decoded" l
    | Error _ -> ()
    | exception ex ->
        Alcotest.failf "truncation at %d raised %s" l (Printexc.to_string ex)
  done

let test_response_decoder_corruption =
  qcheck ~count:500 "corrupted response payloads never raise"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 0 255))
    (fun (at, byte) ->
      let payload = Bytes.of_string (valid_response_payload ()) in
      Bytes.set payload (at mod Bytes.length payload) (Char.chr byte);
      match Cframe.decode_response (Bytes.to_string payload) with
      | Ok _ | Error _ -> true
      | exception _ -> false)

(* ---------- live loopback ---------- *)

let with_server ?(jobs = 2) ?(queue = 8) ?(cache = 32) ?(debug = false) f =
  let config =
    {
      Server.default_config with
      Server.port = 0;
      jobs;
      queue_capacity = queue;
      cache_capacity = cache;
      enable_debug = debug;
    }
  in
  let srv = Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Server.wait srv)
    (fun () -> f srv)

let client_for ?(proto = Client.V1) port =
  Client.create ~port ~proto ~rng:(Rng.create 1) ()

(* Both protocols against one live server, same arguments: results and
   errors must agree. The v1 call runs first, so the v2 call also
   exercises the cache-hit splice of the pre-encoded v2 rendering. *)
let test_live_differential () =
  with_server (fun srv ->
      let port = Server.port srv in
      let c1 = client_for port and c2 = client_for ~proto:Client.V2 port in
      Fun.protect
        ~finally:(fun () ->
          Client.close c1;
          Client.close c2)
        (fun () ->
          let call c ~meth ?params () =
            Client.call c ~id:(Json.Int 1) ~deadline_ms:10_000 ~meth ?params ()
          in
          let both label ~meth ?params () =
            match (call c1 ~meth ?params (), call c2 ~meth ?params ()) with
            | Ok r1, Ok r2 ->
                Alcotest.(check string)
                  (label ^ " results equal")
                  (Json.to_string r1.Client.result)
                  (Json.to_string r2.Client.result)
            | Error e1, Error e2 ->
                Alcotest.(check string)
                  (label ^ " errors equal")
                  (Client.error_to_string e1) (Client.error_to_string e2)
            | Ok _, Error e ->
                Alcotest.failf "%s: v1 ok, v2 error %s" label
                  (Client.error_to_string e)
            | Error e, Ok _ ->
                Alcotest.failf "%s: v1 error %s, v2 ok" label
                  (Client.error_to_string e)
          in
          List.iter
            (fun alg ->
              both
                ("partition " ^ alg)
                ~meth:"partition"
                ~params:(partition_params ~algorithm:alg ~instance:chain_obj ~k:9 ())
                ())
            [ "bandwidth"; "bottleneck"; "procmin"; "pipeline" ];
          both "partition tree procmin" ~meth:"partition"
            ~params:(partition_params ~algorithm:"procmin" ~instance:tree_obj ~k:9 ())
            ();
          (* Theorem-1 refusal: the NP-completeness message must read
             identically through both framings. *)
          both "tree bandwidth rejection" ~meth:"partition"
            ~params:(partition_params ~algorithm:"bandwidth" ~instance:tree_obj ~k:9 ())
            ();
          both "sweep hitting" ~meth:"sweep"
            ~params:
              (Json.Obj
                 [ ("instance", chain_obj); ("k_values", ints [ 7; 9; 12 ]) ])
            ();
          both "sweep deque" ~meth:"sweep"
            ~params:
              (Json.Obj
                 [
                   ("algorithm", Json.String "deque");
                   ("instance", chain_obj);
                   ("k_values", ints [ 7; 9; 12 ]);
                 ])
            ();
          both "verify" ~meth:"verify"
            ~params:(Json.Obj [ ("rounds", Json.Int 5); ("seed", Json.Int 2) ])
            ();
          both "verify rounds cap" ~meth:"verify"
            ~params:(Json.Obj [ ("rounds", Json.Int 1_000_000) ])
            ();
          (* sleep without enable_debug: identical refusal. *)
          both "sleep disabled" ~meth:"sleep"
            ~params:(Json.Obj [ ("ms", Json.Int 5) ])
            ();
          (* timeout_ms:0 means "expired on arrival" on both wires. *)
          let expired c =
            Client.call c ~id:(Json.Int 2) ~timeout_ms:0 ~deadline_ms:10_000
              ~meth:"partition"
              ~params:(partition_params ~instance:chain_obj ~k:9 ())
              ()
          in
          match (expired c1, expired c2) with
          | Error (Client.Timeout m1), Error (Client.Timeout m2) ->
              Alcotest.(check string) "expired deadline message" m1 m2
          | _ -> Alcotest.fail "timeout_ms:0 did not time out on both wires"))

let recv_exact fd n =
  let buf = Bytes.create n in
  let got = ref 0 in
  (try
     while !got < n do
       match Unix.read fd buf !got (n - !got) with
       | 0 -> raise Exit
       | r -> got := !got + r
     done
   with Exit -> ());
  (!got, Bytes.sub_string buf 0 !got)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  fd

let send_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done

let recv_frame fd =
  let got, header = recv_exact fd 4 in
  if got < 4 then Alcotest.fail "short frame header";
  let len =
    (Char.code header.[0] lsl 24)
    lor (Char.code header.[1] lsl 16)
    lor (Char.code header.[2] lsl 8)
    lor Char.code header.[3]
  in
  let got, payload = recv_exact fd len in
  if got < len then Alcotest.fail "short frame payload";
  payload

(* Raw-socket v2 session: hello echo, then two identical requests must
   come back as byte-identical frames — the second is a cache hit
   splicing the stored v2 rendering. *)
let test_loopback_v2_cache_hit_bytes () =
  with_server (fun srv ->
      let fd = connect (Server.port srv) in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          send_all fd Cframe.hello;
          let got, echo = recv_exact fd 5 in
          check_int "hello echo length" 5 got;
          Alcotest.(check string) "hello echoed" Cframe.hello echo;
          let frame =
            match
              Cframe.encode_request ~id:(Json.Int 1) ~meth:"partition"
                ~params:(partition_params ~instance:chain_obj ~k:9 ())
                ()
            with
            | Ok s -> s
            | Error msg -> Alcotest.failf "encode failed: %s" msg
          in
          send_all fd frame;
          let first = recv_frame fd in
          send_all fd frame;
          let second = recv_frame fd in
          Alcotest.(check string) "cache hit replays bytes" first second;
          match decode_payload first with
          | Cframe.Result { id = Json.Int 1; _ } -> ()
          | _ -> Alcotest.fail "response did not decode as result for id 1"))

let test_loopback_bad_hello_closes () =
  with_server (fun srv ->
      let fd = connect (Server.port srv) in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          send_all fd "\xf2XXXX";
          (* A 0xf2 first byte commits to v2; a mangled hello must end
             the connection without any response bytes. *)
          let got, _ = recv_exact fd 1 in
          check_int "no bytes before close" 0 got))

let test_hello_constants_agree () =
  Alcotest.(check string) "hello" Sframe.hello Cframe.hello;
  Alcotest.(check string) "schema" Sframe.schema Cframe.schema;
  check_int "hello length" 5 (String.length Sframe.hello);
  check_bool "discriminator byte" true (Sframe.hello.[0] = Sframe.hello_byte);
  check_int "0xf2" 0xf2 (Char.code Sframe.hello_byte)

(* ---------- workspace pool ---------- *)

let test_workspace_pool_reuse () =
  let pool = Workspaces.create () in
  let run n = Workspaces.with_workspace pool ~n (fun _ws -> ()) in
  run 100;
  check_bool "first checkout creates" true (Workspaces.counters pool = (1, 0));
  run 100;
  check_bool "second checkout reuses" true (Workspaces.counters pool = (1, 1));
  (* Same power-of-two capacity class: still a reuse. *)
  run 70;
  check_bool "same class reuses" true (Workspaces.counters pool = (1, 2));
  (* A different class allocates its own workspace. *)
  run 5000;
  check_bool "new class creates" true (Workspaces.counters pool = (2, 2))

let test_workspace_pool_exception_safety () =
  let pool = Workspaces.create () in
  (try
     Workspaces.with_workspace pool ~n:64 (fun _ws -> failwith "solver blew up")
   with Failure _ -> ());
  Workspaces.with_workspace pool ~n:64 (fun _ws -> ());
  check_bool "returned to pool despite exception" true
    (Workspaces.counters pool = (1, 1))

let suite =
  [
    test_varint_round_trip;
    test_zigzag_round_trip;
    Alcotest.test_case "zigzag domain bounds" `Quick test_zigzag_domain_bounds;
    test_decimal_matches_string_of_int;
    Alcotest.test_case "varint reader rejects" `Quick test_varint_reader_rejects;
    test_binval_round_trip;
    Alcotest.test_case "binval float exactness" `Quick test_binval_float_exact;
    test_digest_parity_chain;
    test_digest_parity_tree;
    Alcotest.test_case "request encoders agree" `Quick
      test_request_encoders_agree;
    Alcotest.test_case "text instance needs v1" `Quick
      test_text_instance_needs_v1;
    Alcotest.test_case "error frames differential" `Quick
      test_error_frames_differential;
    Alcotest.test_case "ok frames differential" `Quick
      test_ok_frames_differential;
    Alcotest.test_case "request decoder truncation" `Quick
      test_request_decoder_truncation;
    test_request_decoder_corruption;
    Alcotest.test_case "response decoder truncation" `Quick
      test_response_decoder_truncation;
    test_response_decoder_corruption;
    Alcotest.test_case "live v1/v2 differential" `Quick test_live_differential;
    Alcotest.test_case "v2 cache hit byte equality" `Quick
      test_loopback_v2_cache_hit_bytes;
    Alcotest.test_case "bad hello closes cleanly" `Quick
      test_loopback_bad_hello_closes;
    Alcotest.test_case "hello constants agree" `Quick test_hello_constants_agree;
    Alcotest.test_case "workspace pool reuse" `Quick test_workspace_pool_reuse;
    Alcotest.test_case "workspace pool exception safety" `Quick
      test_workspace_pool_exception_safety;
  ]
