(* Bandwidth minimization: the paper's TEMP_S algorithm against the three
   DP solvers and the exhaustive oracle. *)

open Helpers
module Bandwidth = Tlp_core.Bandwidth
module Hitting = Tlp_core.Bandwidth_hitting
module Exhaustive = Tlp_baselines.Exhaustive

let weight_of = function
  | Ok { Bandwidth.weight; _ } -> Some weight
  | Error _ -> None

let solvers =
  [
    ("naive", fun c ~k -> weight_of (Bandwidth.naive c ~k));
    ("heap", fun c ~k -> weight_of (Bandwidth.heap c ~k));
    ("deque", fun c ~k -> weight_of (Bandwidth.deque c ~k));
    ( "hitting",
      fun c ~k ->
        match Hitting.solve c ~k with
        | Ok { Hitting.weight; _ } -> Some weight
        | Error _ -> None );
  ]

let test_simple () =
  (* [5] -7- [5] -2- [5], K=10: the optimal cut is the cheap middle edge. *)
  let c = Chain.of_lists [ 5; 5; 5 ] [ 7; 2 ] in
  match Hitting.solve c ~k:10 with
  | Ok { Hitting.cut; weight; _ } ->
      check_int "weight" 2 weight;
      Alcotest.check cut_testable "cut" [ 1 ] cut
  | Error _ -> Alcotest.fail "unexpected infeasibility"

let test_fits_entirely () =
  let c = Chain.of_lists [ 3; 4; 5 ] [ 100; 100 ] in
  match Hitting.solve c ~k:12 with
  | Ok { Hitting.cut; weight; _ } ->
      check_int "weight" 0 weight;
      Alcotest.check cut_testable "cut" [] cut
  | Error _ -> Alcotest.fail "unexpected infeasibility"

let test_infeasible () =
  let c = Chain.of_lists [ 3; 40; 5 ] [ 1; 1 ] in
  (match Hitting.solve c ~k:12 with
  | Error { Tlp_core.Infeasible.vertex; weight; bound } ->
      check_int "vertex" 1 vertex;
      check_int "weight" 40 weight;
      check_int "bound" 12 bound
  | Ok _ -> Alcotest.fail "expected infeasibility");
  match Bandwidth.deque c ~k:12 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected infeasibility"

let test_every_edge_cut () =
  (* K = max vertex weight forces a cut at every edge. *)
  let c = Chain.of_lists [ 5; 5; 5; 5 ] [ 3; 9; 4 ] in
  match Hitting.solve c ~k:5 with
  | Ok { Hitting.cut; weight; _ } ->
      Alcotest.check cut_testable "cut" [ 0; 1; 2 ] cut;
      check_int "weight" 16 weight
  | Error _ -> Alcotest.fail "unexpected infeasibility"

let test_single_vertex () =
  let c = Chain.of_lists [ 7 ] [] in
  match Hitting.solve c ~k:7 with
  | Ok { Hitting.weight; _ } -> check_int "weight" 0 weight
  | Error _ -> Alcotest.fail "unexpected infeasibility"

let test_two_vertices_cut () =
  let c = Chain.of_lists [ 7; 8 ] [ 3 ] in
  match Hitting.solve c ~k:8 with
  | Ok { Hitting.cut; weight; _ } ->
      Alcotest.check cut_testable "cut" [ 0 ] cut;
      check_int "weight" 3 weight
  | Error _ -> Alcotest.fail "unexpected infeasibility"

(* The known-tricky shape for hitting-set implementations: overlapping
   primes where the cheapest edge sits in the overlap. *)
let test_shared_cheap_edge () =
  let c = Chain.of_lists [ 6; 6; 6; 6 ] [ 10; 1; 10 ] in
  (* K=12: primes are [v0,v1,v2] (edges 0-1) and [v1,v2,v3] (edges 1-2);
     edge 1 hits both. *)
  match Hitting.solve c ~k:12 with
  | Ok { Hitting.cut; weight; _ } ->
      Alcotest.check cut_testable "cut" [ 1 ] cut;
      check_int "weight" 1 weight
  | Error _ -> Alcotest.fail "unexpected infeasibility"

let prop_all_solvers_agree =
  qcheck ~count:500 "all bandwidth solvers match the exhaustive optimum"
    QCheck2.(Gen.map Fun.id small_chain_gen)
    (fun (c, k) ->
      let oracle = Option.map snd (Exhaustive.chain_min_bandwidth c ~k) in
      List.for_all (fun (_, solve) -> solve c ~k = oracle) solvers)

let prop_hitting_cut_is_feasible_and_priced =
  qcheck ~count:500 "hitting cut is feasible and correctly priced"
    QCheck2.(Gen.map Fun.id small_chain_gen)
    (fun (c, k) ->
      match Hitting.solve c ~k with
      | Error _ -> false (* generator guarantees max alpha <= k *)
      | Ok { Hitting.cut; weight; _ } ->
          Chain.is_feasible c ~k cut && Chain.cut_weight c cut = weight)

let prop_reverse_symmetry =
  qcheck ~count:300 "optimal weight is invariant under chain reversal"
    QCheck2.(Gen.map Fun.id small_chain_gen)
    (fun (c, k) ->
      let w c =
        match Hitting.solve c ~k with
        | Ok { Hitting.weight; _ } -> Some weight
        | Error _ -> None
      in
      w c = w (Chain.reverse c))

let prop_monotone_in_k =
  qcheck ~count:300 "optimal weight is non-increasing in K"
    QCheck2.(Gen.map Fun.id small_chain_gen)
    (fun (c, k) ->
      let w k =
        match Hitting.solve c ~k with
        | Ok { Hitting.weight; _ } -> weight
        | Error _ -> max_int
      in
      w (k + 1) <= w k)

let prop_galloping_identical =
  qcheck ~count:400 "galloping search returns the binary-search solution"
    QCheck2.(Gen.map Fun.id small_chain_gen)
    (fun (c, k) ->
      match
        ( Hitting.solve ~search:Hitting.Binary c ~k,
          Hitting.solve ~search:Hitting.Galloping c ~k )
      with
      | Ok a, Ok b -> a.Hitting.cut = b.Hitting.cut && a.Hitting.weight = b.Hitting.weight
      | Error _, Error _ -> true
      | _ -> false)

let prop_deque_matches_hitting_large =
  (* Larger random instances (beyond the oracle's reach): the O(n) DP and
     the paper's algorithm must still agree. *)
  let gen =
    let open QCheck2.Gen in
    let* n = int_range 50 400 in
    let* maxw = int_range 2 50 in
    let* alpha = array_size (return n) (int_range 1 maxw) in
    let* beta = array_size (return (n - 1)) (int_range 1 100) in
    let* k = int_range maxw (3 * maxw) in
    return (Chain.make ~alpha ~beta, k)
  in
  qcheck ~count:100 "deque DP and hitting agree on large chains" gen
    (fun (c, k) ->
      match (Bandwidth.deque c ~k, Tlp_core.Bandwidth_hitting.solve c ~k) with
      | Ok a, Ok b -> a.Bandwidth.weight = b.Hitting.weight
      | Error _, Error _ -> true
      | _ -> false)

(* Differential test across the three DP implementations on chains large
   enough to exercise the window machinery (the oracle property above is
   limited to n <= 12).  Weight distributions vary from near-uniform to
   heavily skewed, since the deque/heap invariants are stressed by long
   monotone runs and by spikes respectively. *)
let prop_dp_solvers_differential =
  let gen =
    let open QCheck2.Gen in
    let* n = int_range 2 300 in
    let* dist = int_range 0 2 in
    let weight =
      match dist with
      | 0 -> int_range 1 10 (* near-uniform, many ties *)
      | 1 -> int_range 1 1000 (* wide spread *)
      | _ ->
          (* skewed: mostly tiny, occasional spikes *)
          let* spike = int_range 0 9 in
          if spike = 0 then int_range 500 1000 else int_range 1 5
    in
    let* alpha = array_size (return n) weight in
    let* beta = array_size (return (n - 1)) weight in
    let maxa = Array.fold_left Stdlib.max 1 alpha in
    let total = Array.fold_left ( + ) 0 alpha in
    let* k = int_range maxa (Stdlib.max maxa total) in
    return (Chain.make ~alpha ~beta, k)
  in
  qcheck ~count:200 "naive/heap/deque: equal weights, feasible cuts, deterministic"
    gen
    (fun (c, k) ->
      let run () =
        ( Bandwidth.naive c ~k,
          Bandwidth.heap c ~k,
          Bandwidth.deque c ~k )
      in
      let ((naive, heap, deque) as first) = run () in
      match (naive, heap, deque) with
      | Ok a, Ok b, Ok d ->
          (* identical optimal cut weights *)
          a.Bandwidth.weight = b.Bandwidth.weight
          && b.Bandwidth.weight = d.Bandwidth.weight
          (* every returned cut is K-feasible and priced as claimed *)
          && List.for_all
               (fun (r : Bandwidth.solution) ->
                 Chain.is_feasible c ~k r.Bandwidth.cut
                 && Chain.cut_weight c r.Bandwidth.cut = r.Bandwidth.weight)
               [ a; b; d ]
          (* rerunning the same instance reproduces the same answers *)
          && run () = first
      | Error _, Error _, Error _ -> false (* generator guarantees maxa <= k *)
      | _ -> false)

let suite =
  [
    Alcotest.test_case "three vertices, cheap middle edge" `Quick test_simple;
    Alcotest.test_case "whole chain fits: empty cut" `Quick test_fits_entirely;
    Alcotest.test_case "oversized vertex reported" `Quick test_infeasible;
    Alcotest.test_case "K = max weight cuts every edge" `Quick
      test_every_edge_cut;
    Alcotest.test_case "single vertex" `Quick test_single_vertex;
    Alcotest.test_case "two vertices, forced cut" `Quick test_two_vertices_cut;
    Alcotest.test_case "overlapping primes share cheap edge" `Quick
      test_shared_cheap_edge;
    prop_all_solvers_agree;
    prop_hitting_cut_is_feasible_and_priced;
    prop_reverse_symmetry;
    prop_monotone_in_k;
    prop_galloping_identical;
    prop_deque_matches_hitting_large;
    prop_dp_solvers_differential;
  ]
