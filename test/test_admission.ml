(* Properties of the fixed-capacity heap and the EDF admission queue:
   pop order against sorted oracles over random deadline/class mixes,
   the batch starvation bound, and capacity/close/drain semantics under
   concurrent push and pop. *)

open Helpers
module Fixed_heap = Tlp_util.Fixed_heap
module Admission = Tlp_server.Admission
module Protocol = Tlp_server.Protocol

(* ---------- fixed-capacity heap ---------- *)

let test_heap_capacity_and_clear () =
  let h = Fixed_heap.create ~capacity:3 ~cmp:Int.compare ~dummy:0 in
  check_int "capacity recorded" 3 (Fixed_heap.capacity h);
  check_bool "starts empty" true (Fixed_heap.is_empty h);
  check_bool "push 1" true (Fixed_heap.push h 5);
  check_bool "push 2" true (Fixed_heap.push h 2);
  check_bool "push 3" true (Fixed_heap.push h 9);
  check_bool "full" true (Fixed_heap.is_full h);
  check_bool "push into full heap refused" false (Fixed_heap.push h 1);
  check_bool "peek is min" true (Fixed_heap.peek h = Some 2);
  check_bool "pop frees a slot" true (Fixed_heap.pop h = Some 2);
  check_bool "push after pop" true (Fixed_heap.push h 1);
  Fixed_heap.clear h;
  check_bool "clear empties" true (Fixed_heap.is_empty h);
  check_bool "pop on empty" true (Fixed_heap.pop h = None);
  check_bool "clamped capacity" true
    (Fixed_heap.capacity (Fixed_heap.create ~capacity:0 ~cmp:Int.compare ~dummy:0)
    >= 1)

let heap_pop_sorted =
  qcheck "fixed_heap: drain pops a sorted permutation"
    QCheck2.Gen.(list_size (int_range 0 64) (int_range (-1000) 1000))
    (fun items ->
      let h = Fixed_heap.create ~capacity:64 ~cmp:Int.compare ~dummy:0 in
      List.iter (fun x -> assert (Fixed_heap.push h x)) items;
      let rec drain acc =
        match Fixed_heap.pop h with
        | Some x -> drain (x :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort Int.compare items)

let heap_interleaved_oracle =
  (* Random push/pop interleavings against a sorted-list oracle: the
     heap must agree with the oracle on every pop and every size. *)
  qcheck "fixed_heap: push/pop interleavings match a list oracle"
    QCheck2.Gen.(
      list_size (int_range 0 80) (pair bool (int_range (-50) 50)))
    (fun ops ->
      let h = Fixed_heap.create ~capacity:16 ~cmp:Int.compare ~dummy:0 in
      let oracle = ref [] in
      List.for_all
        (fun (is_push, x) ->
          if is_push then begin
            let fits = List.length !oracle < 16 in
            let pushed = Fixed_heap.push h x in
            if pushed then oracle := List.sort Int.compare (x :: !oracle);
            pushed = fits
          end
          else
            let expect =
              match !oracle with
              | [] -> None
              | y :: rest ->
                  oracle := rest;
                  Some y
            in
            Fixed_heap.pop h = expect)
        ops
      && Fixed_heap.size h = List.length !oracle)

(* ---------- EDF pop order ---------- *)

let push q ~batch ~deadline item =
  Admission.try_push q
    ~priority:(if batch then Protocol.Batch else Protocol.Interactive)
    ~deadline item

let drain q =
  let rec go acc =
    match Admission.pop q with Some x -> go (x :: acc) | None -> List.rev acc
  in
  Admission.close q;
  go []

(* Entries are (has_deadline, deadline in [0,50], batch): a coarse
   deadline range forces ties, exercising the admission-order
   tie-break. *)
let entries_gen =
  QCheck2.Gen.(
    list_size (int_range 0 40) (triple bool (int_range 0 50) bool))

let edf_interactive_oracle =
  qcheck "admission: all-interactive drain matches (deadline, seq) sort"
    QCheck2.Gen.(list_size (int_range 0 40) (pair bool (int_range 0 50)))
    (fun entries ->
      let q = Admission.create ~capacity:64 () in
      List.iteri
        (fun i (has_d, d) ->
          assert
            (push q ~batch:false
               ~deadline:(if has_d then Some (float_of_int d) else None)
               i))
        entries;
      let key = Array.of_list entries in
      let oracle =
        List.sort
          (fun a b ->
            let dl i =
              let has_d, d = key.(i) in
              if has_d then float_of_int d else infinity
            in
            match Float.compare (dl a) (dl b) with
            | 0 -> Int.compare a b
            | c -> c)
          (List.init (List.length entries) Fun.id)
      in
      drain q = oracle)

let edf_mixed_classes =
  qcheck "admission: per-class EDF order and batch starvation bound"
    entries_gen
    (fun entries ->
      let q = Admission.create ~capacity:64 () in
      List.iteri
        (fun i (has_d, d, batch) ->
          assert
            (push q ~batch
               ~deadline:(if has_d then Some (float_of_int d) else None)
               i))
        entries;
      let order = drain q in
      let key = Array.of_list entries in
      let deadline_of i =
        let has_d, d, _ = key.(i) in
        if has_d then float_of_int d else infinity
      in
      let batch_of i =
        let _, _, b = key.(i) in
        b
      in
      (* Everything pushed is popped exactly once. *)
      List.sort Int.compare order = List.init (List.length entries) Fun.id
      (* Within each class, pops follow (deadline, admission order). *)
      && List.for_all
           (fun cls ->
             let cls_order = List.filter (fun i -> batch_of i = cls) order in
             let rec sorted = function
               | a :: (b :: _ as rest) ->
                   (deadline_of a, a) <= (deadline_of b, b) && sorted rest
               | _ -> true
             in
             sorted cls_order)
           [ false; true ]
      (* Aging: while batch waits, at most aging_bound consecutive
         interactive pops. *)
      &&
      let bound = Admission.aging_bound q in
      let rec runs pending_batch run = function
        | [] -> true
        | i :: rest ->
            if batch_of i then runs (pending_batch - 1) 0 rest
            else
              pending_batch = 0
              || (run + 1 <= bound && runs pending_batch (run + 1) rest)
      in
      runs (List.length (List.filter batch_of order)) 0 order)

let test_aging_bound_deterministic () =
  (* One batch request behind a stream of tighter-deadline interactive
     requests: it must be popped after exactly aging_bound interactive
     pops, not starved to the end. *)
  let q = Admission.create ~capacity:32 () in
  let bound = Admission.aging_bound q in
  check_bool "batch admitted" true (push q ~batch:true ~deadline:None 0);
  for i = 1 to 20 do
    check_bool "interactive admitted" true
      (push q ~batch:false ~deadline:(Some 1.0) i)
  done;
  let order = drain q in
  let batch_pos =
    match List.find_index (fun i -> i = 0) order with
    | Some p -> p
    | None -> Alcotest.fail "batch request never popped"
  in
  check_int "batch popped right at the aging bound" bound batch_pos

(* ---------- concurrency: capacity, close, drain ---------- *)

let test_concurrent_push_pop_drain () =
  (* Pushers race poppers through a tiny queue; close begins the drain.
     Every admitted item must be popped exactly once, every refused
     push must be due to a genuinely full (or closed) queue, and the
     final pop after close + drain must be None. *)
  let q = Admission.create ~capacity:8 () in
  let admitted = ref [] and popped = ref [] in
  let admitted_mu = Mutex.create () and popped_mu = Mutex.create () in
  let record mu cell x =
    Mutex.lock mu;
    cell := x :: !cell;
    Mutex.unlock mu
  in
  let pusher w =
    Thread.create
      (fun () ->
        for i = 0 to 49 do
          let item = (w * 1000) + i in
          let batch = i mod 3 = 0 in
          let deadline =
            if i mod 4 = 0 then None else Some (float_of_int ((i * 7) mod 13))
          in
          if push q ~batch ~deadline item then record admitted_mu admitted item
          else Thread.yield ()
        done)
      ()
  in
  let popper () =
    Thread.create
      (fun () ->
        let rec go () =
          match Admission.pop q with
          | Some item ->
              record popped_mu popped item;
              go ()
          | None -> ()
        in
        go ())
      ()
  in
  let poppers = [ popper (); popper () ] in
  let pushers = List.init 4 pusher in
  List.iter Thread.join pushers;
  Admission.close q;
  List.iter Thread.join poppers;
  check_bool "closed" true (Admission.closed q);
  check_int "drained" 0 (Admission.length q);
  check_bool "post-drain pop is None" true (Admission.pop q = None);
  check_bool "push after close refused" false
    (push q ~batch:false ~deadline:None 9999);
  Alcotest.(check (list int))
    "popped exactly the admitted items"
    (List.sort Int.compare !admitted)
    (List.sort Int.compare !popped)

(* Steady-state allocation budget of the admission hot path, enforced
   by measurement: a push/pop cycle on a warm queue is the [Some item]
   stored in the recycled node plus the [Some] returned by the heap pop
   — a handful of words, not closures or protect cells.  The bound (16
   words/cycle) is loose against that budget but tight against any
   reintroduced per-cycle closure (Fun.protect alone was ~10 words). *)
let test_admission_alloc_budget () =
  let q = Admission.create ~capacity:8 () in
  let cycle () =
    assert (Admission.try_push q ~priority:Protocol.Interactive ~deadline:None 7);
    assert (Admission.pop q = Some 7)
  in
  (* Warm up: first touches populate nothing lazily here, but keep the
     measurement honest against future first-touch paths. *)
  for _ = 1 to 100 do cycle () done;
  let iters = 10_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do cycle () done;
  let per_cycle = (Gc.minor_words () -. w0) /. float_of_int iters in
  check_bool
    (Printf.sprintf "%.1f words/cycle within budget" per_cycle)
    true
    (per_cycle <= 16.0)

let suite =
  [
    Alcotest.test_case "fixed_heap: capacity and clear" `Quick
      test_heap_capacity_and_clear;
    heap_pop_sorted;
    heap_interleaved_oracle;
    edf_interactive_oracle;
    edf_mixed_classes;
    Alcotest.test_case "admission: aging bound deterministic" `Quick
      test_aging_bound_deterministic;
    Alcotest.test_case "admission: concurrent push/pop/close/drain" `Quick
      test_concurrent_push_pop_drain;
    Alcotest.test_case "admission: push/pop allocation budget" `Quick
      test_admission_alloc_budget;
  ]
