(* Streaming-repartitioning sessions (PROTOCOL.md section 9): the
   session store's lifecycle (open / update / TTL eviction / stats),
   the session-level differential property (resolve through a drifted
   session == from-scratch solve on the materialized instance), the
   server's open/update/resolve RPCs over both framings, the cache
   re-keying contract (a mutated instance can never replay a stale
   entry), and the deterministic DES drift-replay scenario. *)

open Helpers
module Json = Tlp_util.Json_out
module Rng = Tlp_util.Rng
module Chain = Tlp_graph.Chain
module Tree = Tlp_graph.Tree
module Io = Tlp_graph.Instance_io
module Incr = Tlp_core.Incremental
module Bh = Tlp_core.Bandwidth_hitting
module Session = Tlp_session.Session
module Cache = Tlp_server.Cache
module Protocol = Tlp_server.Protocol
module Handler = Tlp_server.Handler
module State = Tlp_server.State
module Server = Tlp_server.Server
module Client = Tlp_client.Client
module Drift_replay = Tlp_des.Drift_replay

let chain5 = Chain.make ~alpha:[| 4; 2; 7; 3; 5 |] ~beta:[| 6; 2; 9; 4 |]

let inline_chain = {|{"kind":"chain","alpha":[4,2,7,3,5],"beta":[6,2,9,4]}|}

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || at (i + 1)
  in
  at 0

let open_ok ?name store ~instance ~now =
  match Session.open_session store ?name ~instance ~now () with
  | Ok s -> s
  | Error msg -> Alcotest.failf "open failed: %s" msg

let open_err ?name store ~instance ~now =
  match Session.open_session store ?name ~instance ~now () with
  | Ok _ -> Alcotest.fail "open unexpectedly succeeded"
  | Error msg -> msg

(* ---------- store lifecycle ---------- *)

let test_open_find_digest () =
  let store = Session.create ~ttl_s:0.0 () in
  let s =
    open_ok store ~name:"alpha" ~instance:(Io.Chain_instance chain5) ~now:0.0
  in
  check_int "fresh version" 0 (Session.version s);
  Alcotest.(check string) "kind" "chain" (Session.kind s);
  check_int "size" 5 (Session.size s);
  Alcotest.(check string) "digest" "session:1:alpha:v0" (Session.digest s);
  check_int "one open" 1 (Session.count store);
  (match Session.find store ~id:"alpha" ~now:1.0 with
  | Some s' -> Alcotest.(check string) "found same session" "alpha" (Session.id s')
  | None -> Alcotest.fail "find lost the session");
  check_bool "unknown id" true (Session.find store ~id:"beta" ~now:1.0 = None)

let test_generated_ids () =
  let store = Session.create ~ttl_s:0.0 () in
  let a = open_ok store ~instance:(Io.Chain_instance chain5) ~now:0.0 in
  let b = open_ok store ~instance:(Io.Chain_instance chain5) ~now:0.0 in
  Alcotest.(check string) "first generated id" "s1" (Session.id a);
  Alcotest.(check string) "second generated id" "s2" (Session.id b);
  (* A client squatting on the next generated name must not wedge the
     generator. *)
  let _ =
    open_ok store ~name:"s3" ~instance:(Io.Chain_instance chain5) ~now:0.0
  in
  let d = open_ok store ~instance:(Io.Chain_instance chain5) ~now:0.0 in
  Alcotest.(check string) "generator skips taken names" "s4" (Session.id d)

let test_open_rejections () =
  let store = Session.create ~ttl_s:0.0 ~max_sessions:2 () in
  let instance = Io.Chain_instance chain5 in
  check_bool "empty name" true
    (contains (open_err store ~name:"" ~instance ~now:0.0) "bad session name");
  check_bool "name with space" true
    (contains
       (open_err store ~name:"a b" ~instance ~now:0.0)
       "bad session name");
  check_bool "overlong name" true
    (contains
       (open_err store ~name:(String.make 65 'x') ~instance ~now:0.0)
       "bad session name");
  let _ = open_ok store ~name:"dup" ~instance ~now:0.0 in
  check_bool "duplicate name" true
    (contains (open_err store ~name:"dup" ~instance ~now:0.0) "already open");
  let _ = open_ok store ~name:"second" ~instance ~now:0.0 in
  check_bool "table full" true
    (contains (open_err store ~name:"third" ~instance ~now:0.0) "table full")

let test_update_versions_and_rollback () =
  let store = Session.create ~ttl_s:0.0 () in
  let s =
    open_ok store ~name:"a" ~instance:(Io.Chain_instance chain5) ~now:0.0
  in
  let before = Session.materialize s in
  (match Session.update s [ Incr.Vertex (0, 3); Incr.Edge (1, -1) ] with
  | Ok v -> check_int "first update bumps to v1" 1 v
  | Error msg -> Alcotest.failf "update failed: %s" msg);
  Alcotest.(check string) "digest re-keyed" "session:1:a:v1" (Session.digest s);
  (* A batch with a late offender must roll back its applied prefix:
     version, digest, and weights all stay at v1. *)
  (match Session.update s [ Incr.Vertex (1, 5); Incr.Vertex (99, 1) ] with
  | Ok _ -> Alcotest.fail "bad batch unexpectedly accepted"
  | Error msg ->
      Alcotest.(check string)
        "offender named" "vertex 99 out of range [0, 5)" msg);
  check_int "version unchanged by rejected batch" 1 (Session.version s);
  (match (Session.materialize s, before) with
  | Io.Chain_instance now, Io.Chain_instance orig ->
      check_int "prefix rolled back" (orig.Chain.alpha.(1))
        now.Chain.alpha.(1);
      check_int "v1 delta still applied" (orig.Chain.alpha.(0) + 3)
        now.Chain.alpha.(0)
  | _ -> Alcotest.fail "chain session materialized as non-chain");
  match Session.update s [ Incr.Vertex (0, -100) ] with
  | Ok _ -> Alcotest.fail "positivity violation accepted"
  | Error msg ->
      Alcotest.(check string)
        "positivity message" "vertex 0: weight 7-100 must stay positive" msg

let test_ttl_eviction () =
  let store = Session.create ~ttl_s:5.0 () in
  let _ =
    open_ok store ~name:"idle" ~instance:(Io.Chain_instance chain5) ~now:0.0
  in
  check_bool "alive within ttl" true
    (Session.find store ~id:"idle" ~now:4.0 <> None);
  (* The find above refreshed last_used to 4.0; expiry is measured from
     there. *)
  check_bool "evicted after ttl" true
    (Session.find store ~id:"idle" ~now:9.5 = None);
  check_int "table empty" 0 (Session.count store);
  let stats = Json.to_string (Session.stats_json store ~now:10.0) in
  check_bool "eviction counted" true (contains stats {|"evicted":1|});
  check_bool "opened counted" true (contains stats {|"opened":1|});
  (* ttl 0 disables eviction entirely. *)
  let forever = Session.create ~ttl_s:0.0 () in
  let _ =
    open_ok forever ~name:"keep" ~instance:(Io.Chain_instance chain5) ~now:0.0
  in
  check_bool "ttl 0 never evicts" true
    (Session.find forever ~id:"keep" ~now:1.0e9 <> None)

let test_tree_session () =
  let tree =
    Tree.make ~weights:[| 5; 3; 4; 2 |]
      ~edges:[ (0, 1, 7); (0, 2, 2); (2, 3, 6) ]
  in
  let store = Session.create ~ttl_s:0.0 () in
  let s = open_ok store ~name:"t" ~instance:(Io.Tree_instance tree) ~now:0.0 in
  Alcotest.(check string) "kind" "tree" (Session.kind s);
  check_int "size" 4 (Session.size s);
  (match Session.update s [ Incr.Vertex (2, 6); Incr.Edge (0, -4) ] with
  | Ok v -> check_int "tree update bumps version" 1 v
  | Error msg -> Alcotest.failf "tree update failed: %s" msg);
  (match Session.materialize s with
  | Io.Tree_instance t ->
      check_int "vertex weight drifted" 10 t.Tree.weights.(2);
      let _, _, w0 = t.Tree.edges.(0) in
      check_int "edge weight drifted" 3 w0
  | _ -> Alcotest.fail "tree session materialized as non-tree");
  (* Same error spellings and rollback contract as the chain path. *)
  (match Session.update s [ Incr.Edge (1, 9); Incr.Edge (7, 1) ] with
  | Ok _ -> Alcotest.fail "bad tree batch accepted"
  | Error msg ->
      Alcotest.(check string) "offender named" "edge 7 out of range [0, 3)" msg);
  match Session.materialize s with
  | Io.Tree_instance t ->
      let _, _, w1 = t.Tree.edges.(1) in
      check_int "tree prefix rolled back" 2 w1
  | _ -> Alcotest.fail "tree session materialized as non-chain"

let test_stats_json_shape () =
  let store = Session.create ~ttl_s:7.5 () in
  let s =
    open_ok store ~name:"a" ~instance:(Io.Chain_instance chain5) ~now:0.0
  in
  (match Session.update s [ Incr.Vertex (0, 1) ] with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "update failed: %s" msg);
  Session.note_resolve s (Some Incr.Incremental);
  Session.note_resolve s (Some Incr.Full);
  Session.note_resolve s None;
  let text = Json.to_string (Session.stats_json store ~now:1.0) in
  (match Json.validate text with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "stats not valid JSON: %s" msg);
  List.iter
    (fun needle -> check_bool needle true (contains text needle))
    [
      {|"open":1|};
      {|"ttl_s":7.5|};
      {|"session":"a"|};
      {|"version":1|};
      {|"updates":1|};
      {|"resolves":3|};
      {|"resolves_incremental":1|};
      {|"resolves_full":1|};
    ]

(* ---------- differential property: session == from-scratch ---------- *)

(* A drift script: raw integer seeds turned into always-valid deltas
   against plan-side weight copies, exactly how the load generator
   builds its walk.  Returns the delta batches plus the final weights
   (for drawing a feasible K). *)
let script_deltas ~alpha ~beta script =
  let batches =
    List.map
      (fun batch ->
        List.map
          (fun (pick_edge, idx, mag, sign) ->
            let mag = 1 + (abs mag mod 20) in
            let signed current =
              if current - mag >= 1 && sign land 1 = 0 then -mag else mag
            in
            if (not pick_edge) || Array.length beta = 0 then begin
              let i = abs idx mod Array.length alpha in
              let d = signed alpha.(i) in
              alpha.(i) <- alpha.(i) + d;
              Incr.Vertex (i, d)
            end
            else begin
              let j = abs idx mod Array.length beta in
              let d = signed beta.(j) in
              beta.(j) <- beta.(j) + d;
              Incr.Edge (j, d)
            end)
          batch)
      script
  in
  batches

let session_differential_gen =
  let open QCheck2.Gen in
  let* chain_k = small_chain_gen in
  let* script =
    list_size (int_range 1 6)
      (list_size (int_range 1 4)
         (quad bool (int_range 0 10_000) (int_range 0 10_000) (int_range 0 1)))
  in
  let* k_frac = int_range 0 100 in
  return (chain_k, script, k_frac)

let prop_session_matches_scratch ((chain, _), script, k_frac) =
  let store = Session.create ~ttl_s:0.0 () in
  let s =
    match
      Session.open_session store ~instance:(Io.Chain_instance chain) ~now:0.0
        ()
    with
    | Ok s -> s
    | Error msg -> QCheck2.Test.fail_reportf "open failed: %s" msg
  in
  let alpha = Array.copy chain.Chain.alpha in
  let beta = Array.copy chain.Chain.beta in
  let batches = script_deltas ~alpha ~beta script in
  List.iter
    (fun batch ->
      match Session.update s batch with
      | Ok _ -> ()
      | Error msg -> QCheck2.Test.fail_reportf "valid batch rejected: %s" msg)
    batches;
  let max_alpha = Array.fold_left Stdlib.max 1 alpha in
  let total = Array.fold_left ( + ) 0 alpha in
  let k = max_alpha + ((total - max_alpha) * k_frac / 100) in
  let incr =
    match Session.view s with
    | Session.Chain_view incr -> incr
    | Session.Tree_view _ -> QCheck2.Test.fail_report "chain session, tree view"
  in
  let materialized =
    match Session.materialize s with
    | Io.Chain_instance c -> c
    | _ -> QCheck2.Test.fail_report "chain session materialized as non-chain"
  in
  check_int "session tracked the walk" total (Chain.total_weight materialized);
  match
    ( Incr.resolve ~plan:Incr.Prefer_incremental incr ~k,
      Bh.solve materialized ~k )
  with
  | Ok (inc, _), Ok scratch ->
      inc.Bh.cut = scratch.Bh.cut
      && inc.Bh.weight = scratch.Bh.weight
      && inc.Bh.stats = scratch.Bh.stats
      && Session.version s = List.length batches
  | Error e1, Error e2 ->
      Tlp_core.Infeasible.to_string e1 = Tlp_core.Infeasible.to_string e2
  | Ok _, Error _ | Error _, Ok _ ->
      QCheck2.Test.fail_report "feasibility disagreement"

(* ---------- loopback: the session RPCs ---------- *)

let with_server ?(session_ttl = 0.0) ?(cache = 32) f =
  let config =
    {
      Server.default_config with
      Server.port = 0;
      jobs = 2;
      queue_capacity = 8;
      cache_capacity = cache;
      session_ttl_s = session_ttl;
    }
  in
  let srv = Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Server.wait srv)
    (fun () -> f srv)

(* Sequential exchange on one connection: session ops are ordered, so
   unlike test_server's concurrent exchanges these must share a socket
   and run in sequence. *)
let talk port lines =
  let client =
    Client.create ~host:"127.0.0.1" ~port ~rng:(Rng.create 1) ()
  in
  Fun.protect
    ~finally:(fun () -> Client.close client)
    (fun () ->
      List.map
        (fun line ->
          match Client.round_trip client line with
          | Ok response -> response
          | Error e -> Alcotest.failf "round trip: %s" (Client.error_to_string e))
        lines)

let open_line ~id ~session =
  Printf.sprintf
    {|{"id":%d,"method":"open","params":{"instance":%s,"session":"%s"}}|} id
    inline_chain session

let update_line ~id ~session deltas =
  Printf.sprintf {|{"id":%d,"method":"update","params":{"session":"%s","deltas":%s}}|}
    id session deltas

let resolve_line ~id ~session ~k =
  Printf.sprintf
    {|{"id":%d,"method":"resolve","params":{"session":"%s","k":%d,"algorithm":"bandwidth"}}|}
    id session k

let reference_partition ~id chain ~k =
  match
    Handler.partition_result (Io.Chain_instance chain) ~k
      ~algorithm:Protocol.Bandwidth
  with
  | Ok doc -> Protocol.render_ok ~id:(Json.Int id) ~result:(Json.to_string doc)
  | Error _ -> Alcotest.fail "reference partition unexpectedly failed"

let test_loopback_lifecycle () =
  with_server (fun srv ->
      let port = Server.port srv in
      let responses =
        talk port
          [
            open_line ~id:1 ~session:"life";
            update_line ~id:2 ~session:"life" {|[["vertex",0,3],["edge",1,-1]]|};
            resolve_line ~id:3 ~session:"life" ~k:9;
          ]
      in
      match responses with
      | [ opened; updated; resolved ] ->
          Alcotest.(check string)
            "open response"
            {|{"schema":"tlp.rpc/v1","id":1,"ok":true,"result":{"session":"life","kind":"chain","n":5,"version":0}}|}
            opened;
          Alcotest.(check string)
            "update response"
            {|{"schema":"tlp.rpc/v1","id":2,"ok":true,"result":{"session":"life","version":1,"applied":2}}|}
            updated;
          (* The resolve document is byte-identical to a partition of
             the drifted instance — same renderer, same fields, no
             session decoration. *)
          let drifted =
            Chain.make ~alpha:[| 7; 2; 7; 3; 5 |] ~beta:[| 6; 1; 9; 4 |]
          in
          Alcotest.(check string)
            "resolve == partition of materialized instance"
            (reference_partition ~id:3 drifted ~k:9)
            resolved
      | rs -> Alcotest.failf "expected 3 responses, got %d" (List.length rs))

let test_loopback_unknown_session () =
  with_server (fun srv ->
      let port = Server.port srv in
      let responses =
        talk port
          [
            update_line ~id:1 ~session:"ghost" {|[["vertex",0,1]]|};
            resolve_line ~id:2 ~session:"ghost" ~k:9;
            open_line ~id:3 ~session:"dup";
            open_line ~id:4 ~session:"dup";
            update_line ~id:5 ~session:"dup" {|[["vertex",0,-99]]|};
          ]
      in
      match responses with
      | [ u; r; _; dup; bad_delta ] ->
          check_bool "update unknown" true
            (contains u {|"code":"bad_request"|}
            && contains u {|unknown session \"ghost\"|});
          check_bool "resolve unknown" true
            (contains r {|unknown session \"ghost\"|});
          check_bool "double open rejected" true
            (contains dup {|session \"dup\" is already open|});
          check_bool "rejected batch surfaces the offender" true
            (contains bad_delta {|weight 4-99 must stay positive|})
      | rs -> Alcotest.failf "expected 5 responses, got %d" (List.length rs))

let test_loopback_eviction_races_resolve () =
  (* An aggressive TTL: by the time the second resolve arrives the
     session has idled out, and the server answers bad_request instead
     of resurrecting state. *)
  with_server ~session_ttl:0.05 (fun srv ->
      let port = Server.port srv in
      let first =
        talk port
          [ open_line ~id:1 ~session:"brief"; resolve_line ~id:2 ~session:"brief" ~k:9 ]
      in
      check_bool "resolve before expiry is ok" true
        (contains (List.nth first 1) {|"ok":true|});
      Thread.delay 0.2;
      let late = talk port [ resolve_line ~id:3 ~session:"brief" ~k:9 ] in
      check_bool "resolve after eviction" true
        (contains (List.nth late 0) {|unknown session \"brief\"|}))

let test_loopback_cache_rekey () =
  with_server (fun srv ->
      let port = Server.port srv in
      let st = Server.state srv in
      let cache_hits () =
        State.with_lock st (fun () -> Cache.hits (State.cache st))
      in
      let r1 =
        talk port
          [ open_line ~id:0 ~session:"ck"; resolve_line ~id:1 ~session:"ck" ~k:9 ]
        |> fun rs -> List.nth rs 1
      in
      check_int "first resolve misses" 0 (cache_hits ());
      let r2 = List.nth (talk port [ resolve_line ~id:1 ~session:"ck" ~k:9 ]) 0 in
      check_int "same version replays from cache" 1 (cache_hits ());
      Alcotest.(check string) "cached resolve byte-identical" r1 r2;
      (* The update bumps the session version, so the next resolve keys
         differently: it must recompute (no stale hit) and answer for
         the drifted weights. *)
      let after =
        talk port
          [
            update_line ~id:2 ~session:"ck" {|[["vertex",2,10]]|};
            resolve_line ~id:3 ~session:"ck" ~k:19;
          ]
      in
      check_int "post-update resolve is a miss" 1 (cache_hits ());
      let drifted =
        Chain.make ~alpha:[| 4; 2; 17; 3; 5 |] ~beta:[| 6; 2; 9; 4 |]
      in
      Alcotest.(check string)
        "post-update resolve answers for the new weights"
        (reference_partition ~id:3 drifted ~k:19)
        (List.nth after 1);
      check_int "old and new version both cached" 2
        (State.with_lock st (fun () -> Cache.length (State.cache st))))

(* The v2 analogue of the re-key test, at the byte level: repeated
   resolves of one version serve identical binary payloads (the cached
   v2 rendering), and an update forces a re-encode under the new key. *)
let test_loopback_v2_cache_bytes () =
  with_server (fun srv ->
      let port = Server.port srv in
      let client =
        Client.create ~host:"127.0.0.1" ~port ~proto:Client.V2
          ~rng:(Rng.create 1) ()
      in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let send ~id ~meth ~params =
            let frame =
              match
                Tlp_client.Frame.encode_request ~id:(Json.Int id) ~meth ~params
                  ()
              with
              | Ok f -> f
              | Error msg -> Alcotest.failf "unencodable %s: %s" meth msg
            in
            match Client.round_trip_frame client frame with
            | Ok payload -> payload
            | Error e ->
                Alcotest.failf "v2 round trip: %s" (Client.error_to_string e)
          in
          let parse_instance =
            match Json.parse inline_chain with
            | Ok doc -> doc
            | Error msg -> Alcotest.failf "bad inline chain: %s" msg
          in
          let opened =
            send ~id:1 ~meth:"open"
              ~params:
                (Json.Obj
                   [
                     ("instance", parse_instance);
                     ("session", Json.String "v2ck");
                   ])
          in
          (match Tlp_client.Frame.decode_response opened with
          | Ok (Tlp_client.Frame.Result _) -> ()
          | Ok (Tlp_client.Frame.Rpc_err { message; _ }) ->
              Alcotest.failf "open failed: %s" message
          | Error msg -> Alcotest.failf "undecodable open response: %s" msg);
          let resolve ~id =
            send ~id ~meth:"resolve"
              ~params:
                (Json.Obj
                   [
                     ("session", Json.String "v2ck");
                     ("k", Json.Int 9);
                     ("algorithm", Json.String "bandwidth");
                   ])
          in
          let a = resolve ~id:7 in
          let b = resolve ~id:7 in
          Alcotest.(check string) "cache hit serves identical v2 bytes" a b;
          let _ =
            send ~id:8 ~meth:"update"
              ~params:
                (Json.Obj
                   [
                     ("session", Json.String "v2ck");
                     ( "deltas",
                       Json.List
                         [
                           Json.List
                             [ Json.String "vertex"; Json.Int 0; Json.Int 2 ];
                         ] );
                   ])
          in
          let c = resolve ~id:7 in
          let d = resolve ~id:7 in
          check_bool "update re-keys the v2 bytes" true (a <> c);
          Alcotest.(check string) "new version replays byte-identically" c d))

let test_loopback_concurrent_updates () =
  (* Additive deltas commute, so concurrent updaters racing through the
     EDF admission queue must land on the same final weights no matter
     the interleaving; the version count equals the accepted batches. *)
  with_server (fun srv ->
      let port = Server.port srv in
      let _ = talk port [ open_line ~id:0 ~session:"race" ] in
      let workers = 4 and per_worker = 5 in
      let threads =
        List.init workers (fun w ->
            Thread.create
              (fun () ->
                let lines =
                  List.init per_worker (fun i ->
                      update_line
                        ~id:(100 + (w * per_worker) + i)
                        ~session:"race" {|[["vertex",1,1]]|})
                in
                List.iter
                  (fun line -> check_bool "update ok" true (contains line "ok"))
                  (talk port lines))
              ())
      in
      List.iter Thread.join threads;
      let total = workers * per_worker in
      let drifted =
        Chain.make
          ~alpha:[| 4; 2 + total; 7; 3; 5 |]
          ~beta:[| 6; 2; 9; 4 |]
      in
      let responses = talk port [ resolve_line ~id:1 ~session:"race" ~k:25 ] in
      Alcotest.(check string)
        "all updates landed"
        (reference_partition ~id:1 drifted ~k:25)
        (List.nth responses 0);
      let stats = List.nth (talk port [ {|{"id":2,"method":"stats"}|} ]) 0 in
      check_bool "stats count the batches" true
        (contains stats (Printf.sprintf {|"version":%d|} total)
        && contains stats (Printf.sprintf {|"updates":%d|} total)))

(* ---------- DES drift replay ---------- *)

let test_drift_replay_deterministic () =
  let config = { Drift_replay.default_config with rounds = 20; n = 64 } in
  let a = Drift_replay.run (Rng.create 11) config in
  let b = Drift_replay.run (Rng.create 11) config in
  Alcotest.(check string)
    "same seed replays the same trace" a.Drift_replay.trace_digest
    b.Drift_replay.trace_digest;
  let c = Drift_replay.run (Rng.create 12) config in
  check_bool "different seed diverges" true
    (a.Drift_replay.trace_digest <> c.Drift_replay.trace_digest);
  check_int "every round recorded" 20 (List.length a.Drift_replay.rounds);
  check_int "every resolve tallied" 20
    (a.Drift_replay.resolves_incremental + a.Drift_replay.resolves_full);
  (* Round 1 migrates everything off the implicit initial placement. *)
  check_bool "initial placement churn" true (a.Drift_replay.total_migrated >= 64)

let test_drift_replay_churn_accounting () =
  let report =
    Drift_replay.run (Rng.create 3)
      { Drift_replay.default_config with rounds = 12; n = 48; batch = 2 }
  in
  List.iter
    (fun r ->
      check_bool "migrated bounded by n" true
        (r.Drift_replay.migrated >= 0 && r.Drift_replay.migrated <= 48);
      check_bool "weighted churn needs churn" true
        (r.Drift_replay.migrated > 0 || r.Drift_replay.migrated_weight = 0);
      check_bool "deltas within batch bound" true
        (r.Drift_replay.deltas >= 1 && r.Drift_replay.deltas <= 2))
    report.Drift_replay.rounds;
  check_bool "max is max" true
    (List.for_all
       (fun r -> r.Drift_replay.migrated <= report.Drift_replay.max_migrated)
       report.Drift_replay.rounds)

let suite =
  [
    Alcotest.test_case "store: open, find, digest" `Quick test_open_find_digest;
    Alcotest.test_case "store: generated ids" `Quick test_generated_ids;
    Alcotest.test_case "store: open rejections" `Quick test_open_rejections;
    Alcotest.test_case "store: update versions and rollback" `Quick
      test_update_versions_and_rollback;
    Alcotest.test_case "store: ttl eviction" `Quick test_ttl_eviction;
    Alcotest.test_case "store: tree sessions" `Quick test_tree_session;
    Alcotest.test_case "store: stats json" `Quick test_stats_json_shape;
    qcheck ~count:200 "session drift == from-scratch solve"
      session_differential_gen prop_session_matches_scratch;
    Alcotest.test_case "loopback: open/update/resolve" `Quick
      test_loopback_lifecycle;
    Alcotest.test_case "loopback: unknown and duplicate sessions" `Quick
      test_loopback_unknown_session;
    Alcotest.test_case "loopback: resolve after eviction" `Quick
      test_loopback_eviction_races_resolve;
    Alcotest.test_case "loopback: update re-keys the cache" `Quick
      test_loopback_cache_rekey;
    Alcotest.test_case "loopback: v2 cache bytes across update" `Quick
      test_loopback_v2_cache_bytes;
    Alcotest.test_case "loopback: concurrent updates commute" `Quick
      test_loopback_concurrent_updates;
    Alcotest.test_case "des: drift replay is deterministic" `Quick
      test_drift_replay_deterministic;
    Alcotest.test_case "des: drift replay churn accounting" `Quick
      test_drift_replay_churn_accounting;
  ]
