(* Cluster routing tier: ring determinism and rebalance bounds, the
   hedged-race state machine, the Routing_stale client classification,
   and live v1/v2 parity + failover through an in-process router. *)

module Json = Tlp_util.Json_out
module Rng = Tlp_util.Rng
module Chain = Tlp_graph.Chain
module Io = Tlp_graph.Instance_io
module Protocol = Tlp_server.Protocol
module Server = Tlp_server.Server
module Client = Tlp_client.Client
module Backoff = Tlp_client.Backoff
module Ring = Tlp_route.Ring
module Hedge = Tlp_route.Hedge
module Router = Tlp_route.Router

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let shard name port = { Ring.name; host = "127.0.0.1"; port }

let keys n = List.init n (Printf.sprintf "key-%d")

(* ---------- ring ---------- *)

let test_ring_deterministic () =
  let members () =
    [| shard "a" 1001; shard "b" 1002; shard "c" 1003 |]
  in
  let r1 = Ring.create ~seed:42 (members ()) in
  let r2 = Ring.create ~seed:42 (members ()) in
  List.iter
    (fun k ->
      check_int ("placement of " ^ k) (Ring.shard_of r1 k) (Ring.shard_of r2 k))
    (keys 500);
  (* Placement anchors on names, not on member-list order: a permuted
     list maps every key to the same named shard. *)
  let permuted =
    Ring.create ~seed:42 [| shard "c" 1003; shard "a" 1001; shard "b" 1002 |]
  in
  List.iter
    (fun k ->
      check_string
        ("order-independent owner of " ^ k)
        (Ring.shard r1 (Ring.shard_of r1 k)).Ring.name
        (Ring.shard permuted (Ring.shard_of permuted k)).Ring.name)
    (keys 500);
  (* A different seed produces a genuinely different placement. *)
  let reseeded = Ring.create ~seed:43 (members ()) in
  let moved =
    List.length
      (List.filter
         (fun k ->
           (Ring.shard r1 (Ring.shard_of r1 k)).Ring.name
           <> (Ring.shard reseeded (Ring.shard_of reseeded k)).Ring.name)
         (keys 500))
  in
  check_bool "seed changes placement" true (moved > 0)

let test_ring_balance () =
  let r =
    Ring.create ~seed:42 [| shard "a" 1; shard "b" 2; shard "c" 3; shard "d" 4 |]
  in
  let counts = Array.make 4 0 in
  let n = 4000 in
  List.iter
    (fun k ->
      let i = Ring.shard_of r k in
      counts.(i) <- counts.(i) + 1)
    (keys n);
  Array.iteri
    (fun i c ->
      let frac = float_of_int c /. float_of_int n in
      if frac < 0.10 || frac > 0.45 then
        Alcotest.failf "shard %d holds %.0f%% of the keyspace" i
          (100.0 *. frac))
    counts

let test_ring_rebalance_bound () =
  let before =
    Ring.create ~seed:42 [| shard "a" 1; shard "b" 2; shard "c" 3; shard "d" 4 |]
  in
  let after =
    Ring.create ~seed:42
      [| shard "a" 1; shard "b" 2; shard "c" 3; shard "d" 4; shard "e" 5 |]
  in
  let n = 4000 in
  let moved = ref 0 in
  List.iter
    (fun k ->
      let o = (Ring.shard before (Ring.shard_of before k)).Ring.name in
      let o' = (Ring.shard after (Ring.shard_of after k)).Ring.name in
      if o <> o' then begin
        incr moved;
        (* Consistent hashing's defining property: growth only moves
           keys TO the new member, never between the old ones. *)
        check_string ("moved key " ^ k ^ " goes to the new shard") "e" o'
      end)
    (keys n);
  let frac = float_of_int !moved /. float_of_int n in
  (* Ideal is 1/5 of the keyspace; allow vnode-placement slack. *)
  check_bool
    (Printf.sprintf "moved fraction %.3f stays near 1/N" frac)
    true
    (frac > 0.05 && frac < 0.35)

let test_ring_replica_distinct () =
  let r = Ring.create ~seed:42 [| shard "a" 1; shard "b" 2; shard "c" 3 |] in
  List.iter
    (fun k ->
      match Ring.replica_of r k with
      | None -> Alcotest.fail "three-shard ring must offer a replica"
      | Some i ->
          check_bool
            ("replica differs from owner for " ^ k)
            true
            (i <> Ring.shard_of r k))
    (keys 200);
  let solo = Ring.create ~seed:42 [| shard "only" 1 |] in
  check_bool "single-shard ring has no replica" true
    (Ring.replica_of solo "k" = None)

let test_ring_json_roundtrip () =
  let r =
    Ring.create ~epoch:7 ~vnodes:32 ~seed:9 [| shard "a" 1; shard "b" 2 |]
  in
  match Ring.of_json (Ring.to_json r) with
  | Error msg -> Alcotest.failf "round-trip rejected: %s" msg
  | Ok r' ->
      check_int "epoch" (Ring.epoch r) (Ring.epoch r');
      List.iter
        (fun k ->
          check_int ("same placement for " ^ k) (Ring.shard_of r k)
            (Ring.shard_of r' k))
        (keys 300)

(* ---------- hedge ---------- *)

let test_hedge_primary_wins_quietly () =
  let v =
    Hedge.race ~delay_s:0.2
      ~secondary:(fun () -> (Hedge.Good, "secondary"))
      (fun () -> (Hedge.Good, "primary"))
  in
  check_string "primary's value" "primary" v.Hedge.value;
  check_bool "not fired" false v.Hedge.fired;
  check_bool "no failover" false v.Hedge.failover;
  check_int "nothing cancelled" 0 v.Hedge.cancelled

let test_hedge_fires_on_slow_primary () =
  let v =
    Hedge.race ~delay_s:0.02
      ~secondary:(fun () -> (Hedge.Good, "secondary"))
      (fun () ->
        Unix.sleepf 0.5;
        (Hedge.Good, "primary"))
  in
  check_bool "hedge fired" true v.Hedge.fired;
  check_string "secondary's value" "secondary" v.Hedge.value;
  check_bool "winner is secondary" true (v.Hedge.winner = `Secondary);
  check_int "slow primary counted cancelled" 1 v.Hedge.cancelled

let test_hedge_failover_on_primary_failure () =
  let v =
    Hedge.race ~delay_s:0.5
      ~secondary:(fun () -> (Hedge.Good, "secondary"))
      (fun () -> (Hedge.Bad, "primary-error"))
  in
  check_bool "failover, not hedge" true
    (v.Hedge.failover && not v.Hedge.fired);
  check_string "secondary's value" "secondary" v.Hedge.value

let test_hedge_double_failure_keeps_primary_error () =
  let v =
    Hedge.race ~delay_s:0.01
      ~secondary:(fun () ->
        Unix.sleepf 0.05;
        (Hedge.Bad, "secondary-error"))
      (fun () ->
        Unix.sleepf 0.1;
        (Hedge.Bad, "primary-error"))
  in
  check_string "primary's error surfaces" "primary-error" v.Hedge.value;
  check_bool "hedge fired" true v.Hedge.fired

let test_hedge_no_secondary () =
  let v = Hedge.race ~delay_s:0.01 (fun () ->
      Unix.sleepf 0.05;
      (Hedge.Good, "primary"))
  in
  check_string "primary's value" "primary" v.Hedge.value;
  check_bool "nothing fired without a replica" false v.Hedge.fired

(* ---------- Routing_stale classification ---------- *)

(* An ephemeral port from a server that is fully drained: connecting
   is refused, so every attempt is a transport fault. *)
let dead_port () =
  let srv = Server.start { Server.default_config with Server.port = 0 } in
  let port = Server.port srv in
  Server.stop srv;
  Server.wait srv;
  port

let test_routing_stale_after_budget () =
  let policy = { Backoff.default with Backoff.max_attempts = 3; base_delay_ms = 1 } in
  let client = Client.create ~port:(dead_port ()) ~policy ~rng:(Rng.create 5) () in
  (match Client.call_line client {|{"method":"health"}|} with
  | Error (Client.Routing_stale _ as e) ->
      check_bool "not retryable" false (Client.retryable e)
  | Ok _ -> Alcotest.fail "dead port answered"
  | Error e ->
      Alcotest.failf "expected Routing_stale, got %s" (Client.error_to_string e));
  (* The single-attempt primitive keeps the plain Transport class. *)
  (match Client.round_trip client {|{"method":"health"}|} with
  | Error (Client.Transport _) -> ()
  | Ok _ -> Alcotest.fail "dead port answered"
  | Error e ->
      Alcotest.failf "expected Transport, got %s" (Client.error_to_string e));
  Client.close client

(* ---------- live router ---------- *)

let with_cluster ?(n = 2) ?(hedge_ms = 40) f =
  let servers =
    Array.init n (fun _ ->
        Server.start { Server.default_config with Server.port = 0; jobs = 2 })
  in
  let shards =
    Array.mapi
      (fun i s -> shard (Printf.sprintf "shard%d" i) (Server.port s))
      servers
  in
  let router =
    Router.start { Router.default_config with Router.port = 0; hedge_ms } shards
  in
  Fun.protect
    ~finally:(fun () ->
      Router.stop router;
      Router.wait router;
      Array.iter
        (fun s ->
          Server.stop s;
          Server.wait s)
        servers)
    (fun () -> f ~router ~servers ~shards)

let partition_line i =
  Printf.sprintf
    {|{"id":%d,"method":"partition","params":{"instance":{"kind":"chain","alpha":[%d,2,7,3,5],"beta":[6,2,9,4]},"k":3}}|}
    i (1 + i)

let instance_key i =
  Protocol.instance_digest
    (Io.Chain_instance
       (Chain.make ~alpha:[| 1 + i; 2; 7; 3; 5 |] ~beta:[| 6; 2; 9; 4 |]))

let test_router_proxies_byte_identically () =
  with_cluster (fun ~router ~servers:_ ~shards:_ ->
      let via_router =
        Client.create ~port:(Router.port router) ~rng:(Rng.create 7) ()
      in
      let ring = Router.ring router in
      for i = 0 to 9 do
        let line = partition_line i in
        let owner = Ring.shard ring (Ring.shard_of ring (instance_key i)) in
        let direct = Client.create ~port:owner.Ring.port ~rng:(Rng.create 8) () in
        (match
           (Client.round_trip via_router line, Client.round_trip direct line)
         with
        | Ok through, Ok straight ->
            check_string
              (Printf.sprintf "request %d byte-identical through router" i)
              straight through
        | Error e, _ | _, Error e ->
            Alcotest.failf "request %d failed: %s" i (Client.error_to_string e));
        Client.close direct
      done;
      Client.close via_router)

let test_router_v1_v2_parity () =
  with_cluster (fun ~router ~servers:_ ~shards:_ ->
      let port = Router.port router in
      let v1 = Client.create ~port ~rng:(Rng.create 7) () in
      let v2 = Client.create ~port ~proto:Client.V2 ~rng:(Rng.create 7) () in
      let params i =
        Json.Obj
          [
            ( "instance",
              Json.Obj
                [
                  ("kind", Json.String "chain");
                  ( "alpha",
                    Json.List
                      (List.map (fun v -> Json.Int v) [ 1 + i; 2; 7; 3; 5 ]) );
                  ( "beta",
                    Json.List (List.map (fun v -> Json.Int v) [ 6; 2; 9; 4 ]) );
                ] );
            ("k", Json.Int 3);
          ]
      in
      for i = 0 to 4 do
        match
          ( Client.call v1 ~id:(Json.Int i) ~meth:"partition" ~params:(params i) (),
            Client.call v2 ~id:(Json.Int i) ~meth:"partition" ~params:(params i) () )
        with
        | Ok a, Ok b ->
            check_bool
              (Printf.sprintf "request %d same result on both framings" i)
              true
              (a.Client.result = b.Client.result)
        | Error e, _ | _, Error e ->
            Alcotest.failf "request %d failed: %s" i (Client.error_to_string e)
      done;
      Client.close v1;
      Client.close v2)

let field name = function
  | Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let test_router_cluster_rpc () =
  with_cluster (fun ~router ~servers:_ ~shards:_ ->
      let client =
        Client.create ~port:(Router.port router) ~rng:(Rng.create 7) ()
      in
      (match Client.call client ~meth:"cluster" () with
      | Error e -> Alcotest.failf "cluster: %s" (Client.error_to_string e)
      | Ok r -> (
          check_bool "router role" true
            (field "role" r.Client.result = Some (Json.String "router"));
          match Ring.of_json r.Client.result with
          | Error msg -> Alcotest.failf "client cannot parse ring: %s" msg
          | Ok learned ->
              let ring = Router.ring router in
              List.iter
                (fun k ->
                  check_int ("learned ring agrees on " ^ k)
                    (Ring.shard_of ring k) (Ring.shard_of learned k))
                (keys 200)));
      Client.close client)

let test_solo_server_cluster_rpc () =
  let srv = Server.start { Server.default_config with Server.port = 0 } in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Server.wait srv)
    (fun () ->
      let client =
        Client.create ~port:(Server.port srv) ~rng:(Rng.create 7) ()
      in
      (match Client.call client ~meth:"cluster" () with
      | Error e -> Alcotest.failf "cluster: %s" (Client.error_to_string e)
      | Ok r -> (
          check_bool "shard role" true
            (field "role" r.Client.result = Some (Json.String "shard"));
          check_bool "degenerate epoch" true
            (field "ring_epoch" r.Client.result = Some (Json.Int 0));
          (* Bootstrappable: the degenerate document still parses into
             a usable single-member ring. *)
          match Ring.of_json r.Client.result with
          | Ok ring -> check_int "one member" 1 (Ring.length ring)
          | Error msg -> Alcotest.failf "solo doc unparseable: %s" msg));
      Client.close client)

let test_router_failover_accounting () =
  with_cluster ~n:2 (fun ~router ~servers ~shards:_ ->
      (* Kill shard0 outright; every request it owned must transparently
         fail over to shard1 with zero client-visible errors. *)
      Server.stop servers.(0);
      Server.wait servers.(0);
      let client =
        Client.create ~port:(Router.port router) ~rng:(Rng.create 7) ()
      in
      let requests = 16 in
      for i = 0 to requests - 1 do
        match Client.call_line client (partition_line i) with
        | Ok _ -> ()
        | Error e ->
            Alcotest.failf "request %d surfaced %s" i (Client.error_to_string e)
      done;
      (match Client.call client ~meth:"stats" () with
      | Error e -> Alcotest.failf "stats: %s" (Client.error_to_string e)
      | Ok r -> (
          match field "hedge" r.Client.result with
          | Some hedge ->
              let count name =
                match field name hedge with Some (Json.Int n) -> n | _ -> -1
              in
              check_bool "some requests failed over" true (count "failover" > 0);
              check_bool "winner accounting consistent" true
                (count "fired" >= count "primary_won" + count "secondary_won")
          | None -> Alcotest.fail "stats carries no hedge object"));
      Client.close client)

let test_router_unavailable_when_all_dead () =
  let p1 = dead_port () in
  let p2 = dead_port () in
  let router =
    Router.start
      { Router.default_config with Router.port = 0; shard_deadline_ms = 2_000 }
      [| shard "a" p1; shard "b" p2 |]
  in
  Fun.protect
    ~finally:(fun () ->
      Router.stop router;
      Router.wait router)
    (fun () ->
      let client =
        Client.create ~port:(Router.port router) ~rng:(Rng.create 7) ()
      in
      (match Client.call_line client (partition_line 0) with
      | Error (Client.Rpc_error { code = "unavailable"; _ }) -> ()
      | Ok _ -> Alcotest.fail "dead cluster answered ok"
      | Error e ->
          Alcotest.failf "expected unavailable, got %s"
            (Client.error_to_string e));
      Client.close client)

let suite =
  [
    Alcotest.test_case "ring: deterministic, order/seed semantics" `Quick
      test_ring_deterministic;
    Alcotest.test_case "ring: balanced keyspace" `Quick test_ring_balance;
    Alcotest.test_case "ring: growth moves ~1/N keys, only to the new shard"
      `Quick test_ring_rebalance_bound;
    Alcotest.test_case "ring: replica is a distinct shard" `Quick
      test_ring_replica_distinct;
    Alcotest.test_case "ring: cluster document round-trips" `Quick
      test_ring_json_roundtrip;
    Alcotest.test_case "hedge: quiet primary never fires" `Quick
      test_hedge_primary_wins_quietly;
    Alcotest.test_case "hedge: slow primary loses to replica" `Quick
      test_hedge_fires_on_slow_primary;
    Alcotest.test_case "hedge: failed primary fails over" `Quick
      test_hedge_failover_on_primary_failure;
    Alcotest.test_case "hedge: double failure keeps primary error" `Quick
      test_hedge_double_failure_keeps_primary_error;
    Alcotest.test_case "hedge: no replica degenerates cleanly" `Quick
      test_hedge_no_secondary;
    Alcotest.test_case "client: burned budget becomes Routing_stale" `Quick
      test_routing_stale_after_budget;
    Alcotest.test_case "router: proxied bytes identical to direct" `Quick
      test_router_proxies_byte_identically;
    Alcotest.test_case "router: v1/v2 parity" `Quick test_router_v1_v2_parity;
    Alcotest.test_case "router: cluster RPC teaches the ring" `Quick
      test_router_cluster_rpc;
    Alcotest.test_case "server: solo cluster doc bootstraps" `Quick
      test_solo_server_cluster_rpc;
    Alcotest.test_case "router: SIGKILLed shard fails over, counted" `Quick
      test_router_failover_accounting;
    Alcotest.test_case "router: all replicas dead is structured unavailable"
      `Quick test_router_unavailable_when_all_dead;
  ]
