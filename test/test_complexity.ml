(* Empirical complexity: the instrumented operation counters must scale
   as the advertised bounds, independent of wall clocks. *)

open Helpers
module Metrics = Tlp_util.Metrics
module Bandwidth = Tlp_core.Bandwidth
module Hitting = Tlp_core.Bandwidth_hitting
module Chain_gen = Tlp_graph.Chain_gen

let chain_for n seed = Chain_gen.figure2 (Rng.create seed) ~n ~max_weight:50

let test_deque_linear () =
  (* The monotone deque performs at most 2 pushes/pops per position. *)
  List.iter
    (fun n ->
      let c = chain_for n 3 in
      let metrics = Metrics.create () in
      (match Bandwidth.deque ~metrics c ~k:200 with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "unexpected infeasibility");
      let ops = Metrics.get metrics "deque_ops" in
      check_bool
        (Printf.sprintf "deque ops linear at n=%d (ops=%d)" n ops)
        true
        (ops <= 2 * (n + 1)))
    [ 1000; 4000; 16000 ]

let test_heap_nlogn () =
  List.iter
    (fun n ->
      let c = chain_for n 5 in
      let metrics = Metrics.create () in
      (match Bandwidth.heap ~metrics c ~k:200 with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "unexpected infeasibility");
      let ops = Metrics.get metrics "heap_ops" in
      (* pushes + lazy deletions <= 2n *)
      check_bool
        (Printf.sprintf "heap ops <= 2n at n=%d (ops=%d)" n ops)
        true
        (ops <= 2 * (n + 1)))
    [ 1000; 4000 ]

let test_hitting_search_bound () =
  (* Binary-search probes are bounded by r * ceil(log2(max TEMP_S len) + 1). *)
  List.iter
    (fun (n, k) ->
      let c = chain_for n 7 in
      match Hitting.solve c ~k with
      | Ok { Hitting.stats; _ } ->
          let r = stats.Hitting.r in
          let len = Stdlib.max 2 stats.Hitting.temps_max_len in
          let bound =
            int_of_float
              (ceil (float_of_int r *. ((log (float_of_int len) /. log 2.0) +. 1.0)))
          in
          check_bool
            (Printf.sprintf "search steps %d <= %d at n=%d k=%d"
               stats.Hitting.search_steps bound n k)
            true
            (stats.Hitting.search_steps <= bound)
      | Error _ -> Alcotest.fail "unexpected infeasibility")
    [ (2000, 100); (2000, 1000); (8000, 400); (8000, 5000) ]

let test_naive_scan_grows_with_k () =
  (* The naive window scan's work grows with the window, the deque's does
     not — the asymptotic separation E4 measures, in counter form. *)
  let n = 8000 in
  let c = chain_for n 11 in
  let scan_at k =
    let metrics = Metrics.create () in
    match Bandwidth.naive ~metrics c ~k with
    | Ok _ -> Metrics.get metrics "scan_steps"
    | Error _ -> Alcotest.fail "unexpected infeasibility"
  in
  let low = scan_at 100 and high = scan_at 1600 in
  check_bool
    (Printf.sprintf "scan grows >= 8x from K=100 (%d) to K=1600 (%d)" low high)
    true
    (high >= 8 * low)

let suite =
  [
    Alcotest.test_case "deque DP is linear in counter terms" `Quick
      test_deque_linear;
    Alcotest.test_case "heap DP stays within 2n heap ops" `Quick
      test_heap_nlogn;
    Alcotest.test_case "TEMP_S search bounded by r log(len)" `Quick
      test_hitting_search_bound;
    Alcotest.test_case "naive scan grows with the window" `Quick
      test_naive_scan_grows_with_k;
  ]
