(* Incremental re-solving (lib/core/incremental.ml): the repaired prime
   state and the prime-event-swept DP must be indistinguishable from a
   from-scratch solve on the materialized chain — cut, weight, and
   every stats field — across random delta streams, both plans, and
   the lifecycle edges (log wrap, rejected batches, infeasibility). *)

open Helpers
module Incr = Tlp_core.Incremental
module BH = Tlp_core.Bandwidth_hitting
module Infeasible = Tlp_core.Infeasible
module Rng = Tlp_util.Rng

let stats_testable : BH.stats Alcotest.testable =
  Alcotest.testable
    (fun ppf (s : BH.stats) ->
      Format.fprintf ppf "{p=%d; r=%d; q_mean=%f; q_max=%d; len=%f/%d; steps=%d}"
        s.p s.r s.q_mean s.q_max s.temps_mean_len s.temps_max_len
        s.search_steps)
    ( = )

let check_matches_scratch ~msg incr ~k ~plan =
  let scratch = BH.solve (Incr.chain incr) ~k in
  match (Incr.resolve ~plan incr ~k, scratch) with
  | Ok (sol, _mode), Ok expect ->
      Alcotest.check cut_testable (msg ^ ": cut") expect.BH.cut sol.BH.cut;
      check_int (msg ^ ": weight") expect.BH.weight sol.BH.weight;
      Alcotest.check stats_testable (msg ^ ": stats") expect.BH.stats
        sol.BH.stats
  | Error e, Error e' ->
      if e <> e' then
        Alcotest.failf "%s: infeasibility mismatch: %s vs %s" msg
          (Infeasible.to_string e) (Infeasible.to_string e')
  | Ok _, Error e ->
      Alcotest.failf "%s: incremental Ok but scratch infeasible (%s)" msg
        (Infeasible.to_string e)
  | Error e, Ok _ ->
      Alcotest.failf "%s: incremental infeasible (%s) but scratch Ok" msg
        (Infeasible.to_string e)

(* A drift step over a live instance: mostly vertex deltas, some edge
   deltas, magnitudes small enough that most batches are accepted but
   occasional rejections exercise the rollback. *)
let random_batch rng incr =
  let n = Incr.n incr in
  let len = 1 + Rng.int rng 4 in
  List.init len (fun _ ->
      if n > 1 && Rng.int rng 4 = 0 then
        Incr.Edge (Rng.int rng (n - 1), Rng.int_in rng (-3) 5)
      else Incr.Vertex (Rng.int rng n, Rng.int_in rng (-3) 5))

let prop_differential =
  (* The tentpole acceptance test at the core layer: >= 200 random
     (instance, delta stream, K) triples, each replayed as a session
     would — update, resolve (forced incremental), compare against a
     from-scratch solve of the materialized instance. *)
  qcheck ~count:220 "incremental resolve == from-scratch solve"
    QCheck2.Gen.(
      tup3 small_chain_gen (int_range 0 1_000_000) (int_range 2 8))
    (fun ((c, k), seed, steps) ->
      let incr = Incr.create c in
      let rng = Rng.create seed in
      let ok = ref true in
      for _ = 1 to steps do
        (match Incr.apply incr (random_batch rng incr) with
        | Ok () -> ()
        | Error _ -> ());
        (* Vary K across the stream too: per-K states repair lazily
           from different log positions. *)
        let k' = Stdlib.max 1 (k + Rng.int_in rng (-2) 2) in
        let scratch = BH.solve (Incr.chain incr) ~k:k' in
        let inc = Incr.resolve ~plan:Incr.Prefer_incremental incr ~k:k' in
        (match (inc, scratch) with
        | Ok (sol, _), Ok expect ->
            if
              sol.BH.cut <> expect.BH.cut
              || sol.BH.weight <> expect.BH.weight
              || sol.BH.stats <> expect.BH.stats
            then ok := false
        | Error e, Error e' -> if e <> e' then ok := false
        | _ -> ok := false)
      done;
      !ok)

let prop_auto_plan_matches =
  qcheck ~count:100 "auto plan picks a correct mode"
    QCheck2.Gen.(tup2 small_chain_gen (int_range 0 1_000_000))
    (fun ((c, k), seed) ->
      let incr = Incr.create c in
      let rng = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 3 do
        (match Incr.apply incr (random_batch rng incr) with
        | Ok () -> ()
        | Error _ -> ());
        match (Incr.resolve incr ~k, BH.solve (Incr.chain incr) ~k) with
        | Ok (sol, _), Ok expect -> if sol <> expect then ok := false
        | Error e, Error e' -> if e <> e' then ok := false
        | _ -> ok := false
      done;
      !ok)

let prop_primes_match =
  qcheck ~count:150 "repaired primes == rediscovered primes"
    QCheck2.Gen.(tup2 small_chain_gen (int_range 0 1_000_000))
    (fun ((c, k), seed) ->
      let incr = Incr.create c in
      let rng = Rng.create seed in
      (match Incr.apply incr (random_batch rng incr) with
      | Ok () -> ()
      | Error _ -> ());
      match
        ( Incr.prime_ranges ~plan:Incr.Prefer_incremental incr ~k,
          BH.prime_ranges (Incr.chain incr) ~k )
      with
      | Ok a, Ok b -> a = b
      | Error e, Error e' -> e = e'
      | _ -> false)

let test_known_repair () =
  (* 4,4,4,4 at K=7 has primes on every adjacent pair.  Bumping v1 to 5
     keeps the structure; dropping v3 to 1 dissolves the right prime. *)
  let c = Chain.of_lists [ 4; 4; 4; 4 ] [ 1; 1; 1 ] in
  let incr = Incr.create c in
  check_matches_scratch ~msg:"initial" incr ~k:7 ~plan:Incr.Prefer_incremental;
  (match Incr.apply incr [ Incr.Vertex (1, 1) ] with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  check_matches_scratch ~msg:"bump v1" incr ~k:7 ~plan:Incr.Prefer_incremental;
  (match Incr.apply incr [ Incr.Vertex (3, -3) ] with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  check_matches_scratch ~msg:"drop v3" incr ~k:7 ~plan:Incr.Prefer_incremental

let test_edge_deltas_reroute_cut () =
  (* 4,4,4 at K=8: one prime spanning edges {0,1}, hittable by either
     edge.  Inflating the currently chosen edge must reroute the cut to
     the other one — purely an edge-delta effect (primes unchanged). *)
  let c = Chain.of_lists [ 4; 4; 4 ] [ 5; 7 ] in
  let incr = Incr.create c in
  (match Incr.resolve ~plan:Incr.Prefer_incremental incr ~k:8 with
  | Ok (sol, _) ->
      Alcotest.check cut_testable "initial cut" [ 0 ] sol.BH.cut;
      check_int "initial weight" 5 sol.BH.weight
  | Error _ -> Alcotest.fail "unexpected infeasibility");
  (match Incr.apply incr [ Incr.Edge (0, 50) ] with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (match Incr.resolve ~plan:Incr.Prefer_incremental incr ~k:8 with
  | Ok (sol, _) ->
      Alcotest.check cut_testable "rerouted cut" [ 1 ] sol.BH.cut;
      check_int "rerouted weight" 7 sol.BH.weight
  | Error _ -> Alcotest.fail "unexpected infeasibility");
  check_matches_scratch ~msg:"edge 0 heavy" incr ~k:8
    ~plan:Incr.Prefer_incremental

let test_infeasible_first_offender () =
  let c = Chain.of_lists [ 2; 3; 2 ] [ 1; 1 ] in
  let incr = Incr.create c in
  (match Incr.apply incr [ Incr.Vertex (1, 20); Incr.Vertex (2, 20) ] with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  match Incr.resolve incr ~k:10 with
  | Error { Infeasible.vertex = 1; weight = 23; bound = 10 } -> ()
  | Error e -> Alcotest.failf "wrong offender: %s" (Infeasible.to_string e)
  | Ok _ -> Alcotest.fail "expected infeasible"

let test_rejected_batch_atomic () =
  let c = Chain.of_lists [ 4; 4; 4; 4 ] [ 1; 1; 1 ] in
  let incr = Incr.create c in
  let before =
    match Incr.resolve incr ~k:7 with
    | Ok (sol, _) -> sol
    | Error _ -> Alcotest.fail "unexpected infeasibility"
  in
  (* Second delta drives v2 nonpositive: the whole batch must roll
     back, including the already-applied first delta. *)
  (match Incr.apply incr [ Incr.Vertex (0, 2); Incr.Vertex (2, -9) ] with
  | Ok () -> Alcotest.fail "expected rejection"
  | Error _ -> ());
  check_int "total weight unchanged" 16 (Incr.total_weight incr);
  (match Incr.apply incr [ Incr.Vertex (0, 1); Incr.Edge (9, 1) ] with
  | Ok () -> Alcotest.fail "expected rejection"
  | Error _ -> ());
  (match Incr.resolve ~plan:Incr.Prefer_incremental incr ~k:7 with
  | Ok (sol, _) ->
      Alcotest.check cut_testable "solution unchanged" before.BH.cut
        sol.BH.cut
  | Error _ -> Alcotest.fail "unexpected infeasibility");
  check_matches_scratch ~msg:"after rollbacks" incr ~k:7
    ~plan:Incr.Prefer_incremental

let test_log_wrap_falls_back () =
  (* Hammer one vertex past the log capacity (64 for small chains): the
     generation bumps, the next resolve must take the Full path and
     still agree with scratch. *)
  let c = Chain.of_lists [ 4; 4; 4; 4 ] [ 1; 1; 1 ] in
  let incr = Incr.create c in
  (match Incr.resolve incr ~k:7 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unexpected infeasibility");
  for _ = 1 to 70 do
    match Incr.apply incr [ Incr.Vertex (1, 1); Incr.Vertex (1, -1) ] with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg
  done;
  (match Incr.resolve ~plan:Incr.Prefer_incremental incr ~k:7 with
  | Ok (_, Incr.Full) -> ()
  | Ok (_, Incr.Incremental) ->
      Alcotest.fail "expected Full after log wrap"
  | Error _ -> Alcotest.fail "unexpected infeasibility");
  check_matches_scratch ~msg:"post-wrap" incr ~k:7
    ~plan:Incr.Prefer_incremental

let test_large_spiky_goes_incremental () =
  (* A large chain with periodic heavy vertices keeps the prime count
     and window spans far below n, so Auto must choose the incremental
     plan after a small drift batch — and still match scratch. *)
  (* Heavy spikes every 100 vertices dwarf the base weights, so
     segment ends stall at spikes: the prime count collapses to about
     n / spacing and update windows stay a few segments wide — the
     regime the paper's p- and q-dependent bound targets. *)
  let n = 50_000 in
  let alpha = Array.init n (fun i -> if i mod 100 = 99 then 5_000 else 1) in
  let beta = Array.init (n - 1) (fun i -> 1 + (i * 7 mod 97)) in
  let c = Chain.make ~alpha ~beta in
  let incr = Incr.create c in
  let k = 20_000 in
  (match Incr.resolve incr ~k with
  | Ok (_, Incr.Full) -> ()
  | Ok (_, Incr.Incremental) -> Alcotest.fail "first resolve must rescan"
  | Error _ -> Alcotest.fail "unexpected infeasibility");
  (match
     Incr.apply incr
       [ Incr.Vertex (777, 3); Incr.Vertex (12_399, -400); Incr.Edge (40, 9) ]
   with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (match Incr.resolve incr ~k with
  | Ok (_, Incr.Incremental) -> ()
  | Ok (_, Incr.Full) -> Alcotest.fail "expected the incremental plan"
  | Error _ -> Alcotest.fail "unexpected infeasibility");
  check_matches_scratch ~msg:"large spiky" incr ~k ~plan:Incr.Auto

let test_component_weights_match () =
  let c = Chain.of_lists [ 4; 4; 4; 4; 4 ] [ 1; 2; 3; 4 ] in
  let incr = Incr.create c in
  (match Incr.apply incr [ Incr.Vertex (2, 5) ] with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let cut = [ 1; 3 ] in
  Alcotest.(check (list int))
    "component weights via Fenwick"
    (Chain.component_weights (Incr.chain incr) cut)
    (Incr.component_weights incr cut)

let suite =
  [
    Alcotest.test_case "known repair" `Quick test_known_repair;
    Alcotest.test_case "edge deltas reroute cut" `Quick
      test_edge_deltas_reroute_cut;
    Alcotest.test_case "infeasible first offender" `Quick
      test_infeasible_first_offender;
    Alcotest.test_case "rejected batch is atomic" `Quick
      test_rejected_batch_atomic;
    Alcotest.test_case "log wrap falls back to full" `Quick
      test_log_wrap_falls_back;
    Alcotest.test_case "large spiky instance goes incremental" `Quick
      test_large_spiky_goes_incremental;
    Alcotest.test_case "component weights match" `Quick
      test_component_weights_match;
    prop_differential;
    prop_auto_plan_matches;
    prop_primes_match;
  ]
